"""TrueNorth timing model: maximum tick frequency vs. load and voltage.

The chip is globally tick-synchronized: a tick completes only when every
core has drained its synaptic events and every packet has been routed.
The maximum tick frequency (Fig. 5(b,c)) is therefore set by the busiest
core's event-service time plus a fixed per-tick overhead (neuron sweep,
synchronization):

    t_tick(V) = (t_fixed + busiest_core_events * t_syn) / s(V)

Calibration at 0.75 V (see DESIGN.md section 5):

* ``t_syn``  = 12.5 ns per synaptic event (80 M events/s per core) — at
  the worst case of 65,536 events per core-tick (every synapse active,
  every neuron firing every tick), the tick takes ~0.97 ms: the design
  point of "real-time at the worst case";
* ``t_fixed`` = 150 us — light-load tick ceiling ~6.7 kHz, and the
  anchor-A network (20 Hz x 128 syn) reaches ~6.3 kHz >= the 5x faster
  run the paper reports.

Voltage scaling: the asynchronous logic's speed is roughly linear in the
overdrive, s(V) = (V - 0.55) / (0.75 - 0.55); correct operation requires
V >= ~0.70 V (paper Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import params
from repro.core.counters import EventCounters
from repro.utils.validation import require

T_FIXED_S = 150e-6  # fixed tick overhead at 0.75 V
T_SYNAPTIC_EVENT_S = 12.5e-9  # per-event core service time at 0.75 V
V_SPEED_INTERCEPT = 0.55  # extrapolated zero-speed supply voltage


@dataclass(frozen=True)
class TimingModel:
    """Maximum-tick-frequency evaluator at a given supply voltage."""

    voltage: float = params.NOMINAL_VOLTAGE

    def __post_init__(self) -> None:
        require(
            params.MIN_FUNCTIONAL_VOLTAGE - 1e-9 <= self.voltage <= params.MAX_VOLTAGE + 1e-9,
            f"voltage {self.voltage} below functional floor "
            f"{params.MIN_FUNCTIONAL_VOLTAGE} or above {params.MAX_VOLTAGE}",
        )

    @property
    def speed_factor(self) -> float:
        """Logic speed relative to 0.75 V operation."""
        return (self.voltage - V_SPEED_INTERCEPT) / (
            params.NOMINAL_VOLTAGE - V_SPEED_INTERCEPT
        )

    def tick_time_s(self, busiest_core_events: float) -> float:
        """Minimum tick duration given the busiest core's event load."""
        base = T_FIXED_S + busiest_core_events * T_SYNAPTIC_EVENT_S
        return base / self.speed_factor

    def max_tick_frequency_hz(self, busiest_core_events: float) -> float:
        """Maximum sustainable tick frequency for the given load."""
        return 1.0 / self.tick_time_s(busiest_core_events)

    # -- uniform-workload helpers (Fig. 5(b,c)) ---------------------------
    @staticmethod
    def core_events_per_tick(rate_hz: float, active_synapses: float) -> float:
        """Busiest-core synaptic events/tick for a uniform workload.

        Each of the core's 256 neurons receives ``active_synapses``
        events per presynaptic spike at ``rate_hz``; the recurrent
        characterization networks are balanced, so the busiest core
        equals the mean core.
        """
        return params.CORE_NEURONS * active_synapses * rate_hz * params.TICK_SECONDS

    def max_frequency_for_workload_khz(
        self, rate_hz: float, active_synapses: float
    ) -> float:
        """Maximum tick frequency (kHz) of a uniform recurrent workload."""
        events = self.core_events_per_tick(rate_hz, active_synapses)
        return self.max_tick_frequency_hz(events) / 1e3

    def supports_real_time(self, rate_hz: float, active_synapses: float) -> bool:
        """True when the workload can run at (or above) 1 kHz ticks."""
        return self.max_frequency_for_workload_khz(rate_hz, active_synapses) >= 1.0

    def max_frequency_for_run_khz(self, counters: EventCounters) -> float:
        """Maximum tick frequency implied by a simulated run's peak load."""
        return self.max_tick_frequency_hz(counters.max_core_events_per_tick) / 1e3

    def wall_clock_for_ticks_s(
        self, n_ticks: int, tick_frequency_hz: float = params.REAL_TIME_HZ
    ) -> float:
        """Wall-clock time to execute *n_ticks* at a chosen tick rate.

        The paper's longest regression: 100M ticks at 1 kHz = 27.7 hours.
        """
        return n_ticks / tick_frequency_hz
