"""TrueNorth: the silicon expression of the kernel (architectural simulator).

Functionally one-to-one with the Compass expression and the reference
kernel (paper Section VI-A), but organized the way the chip is:

* each logical core occupies a physical grid slot (:class:`Placement`);
* spikes travel as packets over the 2D mesh with X-then-Y
  dimension-order routing; hop counts and chip-boundary crossings are
  accounted per packet and feed the energy model;
* each core holds a 16-slot axon event buffer indexed by delivery tick
  (the programmable axonal delay of 1..15 ticks);
* defective cores are disabled and packets detour around them (with
  ``detailed_noc=True`` the detour paths are actually walked).

The per-core synapse/neuron arithmetic is shared with Compass (the two
expressions were co-designed from one kernel); the orchestration —
placement, routing, delay buffers, boundary links — is the hardware's.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.chip import ChipGeometry, Placement
from repro.core.counters import EventCounters
from repro.core.crossbar import synaptic_input
from repro.core.inputs import InputSchedule
from repro.core.network import OUTPUT_TARGET, Network
from repro.core.neuron import neuron_tick
from repro.core.record import SpikeRecord
from repro.noc.mesh import MeshNetwork


class TrueNorthSimulator:
    """Event-driven chip-level simulator for one network."""

    def __init__(
        self,
        network: Network,
        placement: Placement | None = None,
        detailed_noc: bool = False,
        disabled_routers: set | None = None,
        chip_array=None,
    ) -> None:
        """Build a simulator for *network*.

        ``chip_array`` (a :class:`repro.noc.multichip.ChipArray`) enables
        detailed multi-chip routing: packets walk the tiled global mesh
        and every chip-boundary crossing goes through the merge/split
        links, accumulating their traffic statistics.  The placement's
        chip coordinates must fit inside the array.
        """
        network.validate()
        self.network = network
        if placement is not None:
            self.placement = placement
        elif network.n_cores <= ChipGeometry().cores_per_chip:
            self.placement = Placement.compact(network.n_cores)
        else:
            self.placement = Placement.grid(network.n_cores)
        if self.placement.n_cores != network.n_cores:
            raise ValueError(
                f"placement covers {self.placement.n_cores} cores, "
                f"network has {network.n_cores}"
            )
        self.detailed_noc = detailed_noc
        gx, gy = self.placement.global_xy()
        self._gx, self._gy = gx, gy
        self.mesh: MeshNetwork | None = None
        self.chip_array = chip_array
        if chip_array is not None:
            if detailed_noc or disabled_routers:
                raise ValueError(
                    "chip_array provides its own mesh; do not combine with "
                    "detailed_noc/disabled_routers"
                )
            if (
                int(gx.max()) >= chip_array.mesh.width
                or int(gy.max()) >= chip_array.mesh.height
            ):
                raise ValueError("placement does not fit inside the chip array")
        elif detailed_noc:
            self.mesh = MeshNetwork(
                width=int(gx.max()) + 1, height=int(gy.max()) + 1
            )
            for rx, ry in disabled_routers or set():
                self.mesh.disable(rx, ry)
        elif disabled_routers:
            raise ValueError("disabled_routers requires detailed_noc=True")

        self.counters = EventCounters()
        self.counters.ensure_cores(network.n_cores)
        self.tick = 0
        self.membranes = [
            core.initial_v.astype(np.int64).copy() for core in network.cores
        ]
        # Per-core axon event buffers: 16 delivery slots (delay 1..15).
        self.axon_buffers = [
            np.zeros((params.DELAY_SLOTS, core.n_axons), dtype=bool)
            for core in network.cores
        ]
        self.boundary_crossings = 0
        self._input_by_tick: dict[int, list[tuple[int, int]]] = {}

    # -- input handling ----------------------------------------------------
    def load_inputs(self, inputs: InputSchedule | None) -> None:
        """Stage external input events (injected at the chip periphery)."""
        if inputs is None:
            return
        for tick, core, axon in inputs:
            self._input_by_tick.setdefault(tick, []).append((core, axon))

    def _inject_inputs(self) -> None:
        for core, axon in self._input_by_tick.pop(self.tick, ()):
            self.axon_buffers[core][self.tick % params.DELAY_SLOTS, axon] = True

    # -- NoC accounting -------------------------------------------------------
    def _route_spikes(
        self, src_core: int, targets: np.ndarray, axons: np.ndarray, delays: np.ndarray
    ) -> None:
        """Send one core's spikes into the mesh and the delay buffers."""
        routed = targets != OUTPUT_TARGET
        if not routed.any():
            return
        dst = targets[routed]
        dst_axons = axons[routed]
        dst_delays = delays[routed]

        if self.chip_array is not None:
            src_xy = (int(self._gx[src_core]), int(self._gy[src_core]))
            for t_core in dst:
                hops, crossings = self.chip_array.deliver(
                    src_xy, (int(self._gx[t_core]), int(self._gy[t_core]))
                )
                self.counters.hops += hops
                self.boundary_crossings += crossings
        elif self.mesh is not None:
            src_xy = (int(self._gx[src_core]), int(self._gy[src_core]))
            for t_core in dst:
                hops = self.mesh.deliver(
                    src_xy, (int(self._gx[t_core]), int(self._gy[t_core]))
                )
                self.counters.hops += hops
            for t_core in dst:
                self.boundary_crossings += self.placement.chip_crossings(
                    src_core, int(t_core)
                )
        else:
            hops = self.placement.hop_matrix_for_targets(
                np.full(dst.shape, src_core), dst
            )
            self.counters.hops += int(hops.sum())
            for t_core in dst:
                self.boundary_crossings += self.placement.chip_crossings(
                    src_core, int(t_core)
                )

        for t_core, t_axon, t_delay in zip(dst, dst_axons, dst_delays):
            when = self.tick + int(t_delay)
            self.axon_buffers[t_core][when % params.DELAY_SLOTS, t_axon] = True

    # -- one tick ----------------------------------------------------------------
    def step(self) -> list[tuple[int, int, int]]:
        """Advance the chip one tick; return spikes (tick, core, neuron)."""
        net = self.network
        seed = net.seed
        slot = self.tick % params.DELAY_SLOTS
        self._inject_inputs()
        if self.chip_array is not None:
            self.chip_array.begin_tick()

        emitted: list[tuple[int, int, int]] = []
        for core_id, core in enumerate(net.cores):
            row = self.axon_buffers[core_id][slot]
            active = np.nonzero(row)[0]
            row[:] = False
            self.counters.deliveries += int(active.size)

            syn, n_events = synaptic_input(core, active, core_id, self.tick, seed)
            self.counters.record_core_tick(core_id, n_events)

            v, spiked = neuron_tick(
                core, self.membranes[core_id], syn, core_id, self.tick, seed
            )
            self.membranes[core_id] = v
            self.counters.neuron_updates += core.n_neurons
            self.counters.active_neuron_updates += core.n_neurons

            fired = np.nonzero(spiked)[0]
            if fired.size == 0:
                continue
            self.counters.spikes += int(fired.size)
            emitted.extend((self.tick, core_id, int(n)) for n in fired)
            self._route_spikes(
                core_id,
                core.target_core[fired],
                core.target_axon[fired],
                core.delay[fired],
            )

        self.tick += 1
        self.counters.ticks = self.tick
        return emitted

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks* ticks and return the spike record."""
        self.load_inputs(inputs)
        events: list[tuple[int, int, int]] = []
        for _ in range(n_ticks):
            events.extend(self.step())
        return SpikeRecord.from_events(events, self.counters)


def run_truenorth(
    network: Network,
    n_ticks: int,
    inputs: InputSchedule | None = None,
    placement: Placement | None = None,
    detailed_noc: bool = False,
) -> SpikeRecord:
    """Convenience one-shot TrueNorth run."""
    sim = TrueNorthSimulator(network, placement, detailed_noc)
    return sim.run(n_ticks, inputs)
