"""Validation helpers used across the library.

All public constructors validate their inputs eagerly so that
configuration errors surface at network-build time, not deep inside a
simulation tick.  The array helpers delegate to the lint diagnostic
vocabulary (:mod:`repro.lint.diagnostics`): a violation raises
:class:`~repro.lint.diagnostics.LintError` — a ``ValueError`` subclass —
carrying a structured diagnostic with a stable ``TN###`` code, so ad-hoc
call sites and the static model checker report failures identically.

:func:`require` stays a plain ``ValueError`` for non-architectural
argument checking (CLI parameters, experiment configs, and the like).
"""

from __future__ import annotations

import numpy as np

from repro.lint.diagnostics import Diagnostic, LintError, Severity


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def _fail(code: str, message: str, hint: str = "") -> None:
    """Raise a single-diagnostic :class:`LintError`."""
    raise LintError(
        [Diagnostic(code=code, severity=Severity.ERROR, message=message, hint=hint)]
    )


def check_array_shape(name: str, array: np.ndarray, shape: tuple[int, ...]) -> None:
    """Validate that *array* has exactly the given *shape* (TN001)."""
    if not isinstance(array, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(array).__name__}")
    if array.shape != shape:
        _fail("TN001", f"{name} must have shape {shape}, got {array.shape}")


def check_int_dtype(name: str, array: np.ndarray) -> None:
    """Validate that *array* has an integer (or bool) dtype.

    Raises ``TypeError`` (the model checker's structural pass reports
    the same condition as a TN002 diagnostic).
    """
    if array.dtype.kind not in "iub":
        raise TypeError(f"{name} must have an integer dtype, got {array.dtype}")


def check_in_range(name: str, array: np.ndarray, low: int, high: int) -> None:
    """Validate that every element of *array* lies in [*low*, *high*] (TN100)."""
    if array.size == 0:
        return
    amin = int(array.min())
    amax = int(array.max())
    if amin < low or amax > high:
        _fail(
            "TN100",
            f"{name} values must lie in [{low}, {high}], got [{amin}, {amax}]",
        )
