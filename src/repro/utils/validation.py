"""Validation helpers used across the library.

All public constructors validate their inputs eagerly so that configuration
errors surface at network-build time, not deep inside a simulation tick.
"""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_array_shape(name: str, array: np.ndarray, shape: tuple[int, ...]) -> None:
    """Validate that *array* has exactly the given *shape*."""
    if not isinstance(array, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(array).__name__}")
    if array.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {array.shape}")


def check_int_dtype(name: str, array: np.ndarray) -> None:
    """Validate that *array* has an integer (or bool) dtype."""
    if array.dtype.kind not in "iub":
        raise TypeError(f"{name} must have an integer dtype, got {array.dtype}")


def check_in_range(name: str, array: np.ndarray, low: int, high: int) -> None:
    """Validate that every element of *array* lies in [*low*, *high*]."""
    if array.size == 0:
        return
    amin = int(array.min())
    amax = int(array.max())
    if amin < low or amax > high:
        raise ValueError(
            f"{name} values must lie in [{low}, {high}], got [{amin}, {amax}]"
        )
