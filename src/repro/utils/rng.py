"""Seeded RNG construction: the one sanctioned ``default_rng`` site.

Build-time randomness (network wiring, synthetic scenes, defect maps,
measurement noise) uses numpy Generators; *tick-time* randomness uses
the counter-based :mod:`repro.core.prng`.  For the build-time side,
reproducibility requires that every generator is explicitly seeded —
an unseeded ``np.random.default_rng()`` pulls OS entropy and makes two
runs of the same builder produce different networks.

The determinism source lint (:mod:`repro.lint.source`, rules SL102 and
SL103) therefore bans direct ``default_rng`` calls outside this module;
all call sites construct their generators through :func:`seeded_rng`.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """Return a numpy Generator seeded with the explicit *seed*.

    Raises ``ValueError`` when *seed* is ``None`` — callers must thread
    a concrete seed so identical invocations reproduce identical draws.
    """
    if seed is None:
        raise ValueError(
            "seeded_rng requires an explicit integer seed; unseeded "
            "generators break build reproducibility"
        )
    return np.random.default_rng(seed)
