"""Shared utilities: validation helpers and reproducible-seeding support."""

from repro.utils.validation import (
    check_array_shape,
    check_in_range,
    check_int_dtype,
    require,
)

__all__ = [
    "check_array_shape",
    "check_in_range",
    "check_int_dtype",
    "require",
]
