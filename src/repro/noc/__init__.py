"""Network-on-chip substrate: routers, mesh, chip boundaries, tiling."""

from repro.noc.merge_split import ChipBoundary, Edge, MergeSplitLink
from repro.noc.mesh import MeshNetwork
from repro.noc.multichip import ChipArray, board_4x1, board_4x4
from repro.noc.packet import SpikePacket
from repro.noc.router import Port, Router, dimension_order_port

__all__ = [
    "ChipBoundary",
    "Edge",
    "MergeSplitLink",
    "MeshNetwork",
    "ChipArray",
    "board_4x1",
    "board_4x4",
    "SpikePacket",
    "Port",
    "Router",
    "dimension_order_port",
]
