"""NoC congestion analysis: router hotspots and tick-stretch estimation.

TrueNorth's mesh is engineered so that spike traffic — "sparse in time"
— never limits real-time operation; routers and boundary links have
orders of magnitude more bandwidth than uniform spike traffic needs.
This module makes that claim *checkable*: it tracks per-tick per-router
packet loads during detailed-NoC simulation, estimates the tick
stretching a saturated router would cause, and provides the analytic
hotspot model used by the congestion ablation bench (which shows uniform
traffic is far below capacity while adversarial all-to-one traffic
saturates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import params
from repro.core.workload import WorkloadDescriptor
from repro.utils.validation import require

# Router forwarding capacity per 1 ms tick.  Matches the merge/split
# shared-link budget: the asynchronous routers run at tens of MHz
# effective packet rates (paper: fast time-multiplexed metal wires).
ROUTER_CAPACITY_PER_TICK = 40_000


@dataclass(frozen=True)
class TickCongestion:
    """Router load statistics for one tick."""

    tick: int
    peak_router_load: int
    mean_router_load: float
    total_hops: int

    def stretch(self, capacity: int = ROUTER_CAPACITY_PER_TICK) -> float:
        """Tick-duration multiplier if the busiest router saturates."""
        return max(1.0, self.peak_router_load / capacity)

    @property
    def saturated(self) -> bool:
        """True when the busiest router exceeded its tick budget."""
        return self.peak_router_load > ROUTER_CAPACITY_PER_TICK


class CongestionMonitor:
    """Tracks per-tick router loads of a detailed-NoC simulation."""

    def __init__(self, sim) -> None:
        require(sim.mesh is not None, "congestion monitoring needs detailed_noc=True")
        self.sim = sim
        self._previous: dict = {}
        self.history: list[TickCongestion] = []

    def after_tick(self) -> TickCongestion:
        """Record loads accumulated since the previous call."""
        current = self.sim.mesh.congestion_map()
        loads = {
            key: total - self._previous.get(key, 0) for key, total in current.items()
        }
        loads = {k: v for k, v in loads.items() if v > 0}
        self._previous = dict(current)
        values = np.asarray(list(loads.values()), dtype=np.int64)
        entry = TickCongestion(
            tick=self.sim.tick - 1,
            peak_router_load=int(values.max()) if values.size else 0,
            mean_router_load=float(values.mean()) if values.size else 0.0,
            total_hops=int(values.sum()),
        )
        self.history.append(entry)
        return entry

    @property
    def peak(self) -> int:
        """Busiest router-tick load over the whole run."""
        return max((e.peak_router_load for e in self.history), default=0)

    def worst_stretch(self, capacity: int = ROUTER_CAPACITY_PER_TICK) -> float:
        """Largest per-tick stretch over the run."""
        return max((e.stretch(capacity) for e in self.history), default=1.0)


def run_with_congestion(sim, n_ticks: int, inputs=None):
    """Run a detailed-NoC simulator, returning (record, monitor)."""
    from repro.core.record import SpikeRecord

    monitor = CongestionMonitor(sim)
    sim.load_inputs(inputs)
    events = []
    for _ in range(n_ticks):
        events.extend(sim.step())
        monitor.after_tick()
    return SpikeRecord.from_events(events, sim.counters), monitor


def uniform_traffic_hotspot_load(
    workload: WorkloadDescriptor, grid_side: int = params.CHIP_CORES_X
) -> float:
    """Analytic busiest-router load/tick under uniform random traffic.

    Total hop-traversals per tick spread over the mesh's routers; the
    central routers of a dimension-order-routed mesh carry ~4x the mean
    (the standard DOR center-loading factor for uniform traffic).
    """
    total_hops = workload.hops_per_tick
    mean_per_router = total_hops / (grid_side * grid_side)
    return 4.0 * mean_per_router


def hotspot_traffic_load(workload: WorkloadDescriptor) -> float:
    """Busiest-router load/tick under adversarial all-to-one traffic.

    Every spike converges on one destination core: its local router
    carries every packet.
    """
    return workload.spikes_per_tick


def congestion_margin(
    workload: WorkloadDescriptor,
    grid_side: int = params.CHIP_CORES_X,
    capacity: int = ROUTER_CAPACITY_PER_TICK,
) -> dict:
    """Capacity margins under uniform vs adversarial traffic patterns."""
    uniform = uniform_traffic_hotspot_load(workload, grid_side)
    hotspot = hotspot_traffic_load(workload)
    return {
        "uniform_peak_load": uniform,
        "uniform_utilization": uniform / capacity,
        "hotspot_peak_load": hotspot,
        "hotspot_utilization": hotspot / capacity,
        "uniform_stretch": max(1.0, uniform / capacity),
        "hotspot_stretch": max(1.0, hotspot / capacity),
    }
