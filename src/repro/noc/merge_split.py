"""Merge/split boundary blocks: seamless chip-to-chip mesh extension.

"To scale the 2D mesh across chip boundaries, where the number of
inter-chip connections is limited, we use a merge-split structure at the
four edges of the on-chip mesh boundary.  Packets leaving the mesh are
tagged with their row (or column) before being merged onto a shared link
that exits the chip.  Symmetrically, packets that enter the chip from a
shared link are sent to the appropriate row (or column) using the tagged
information." (paper Section III-C)

Functionally the tag/merge/split round-trip is the identity — that is
the point of the design — so this module models the *bandwidth* aspect:
per-edge shared links with finite packets-per-tick capacity, tag
encode/decode accounting, and link-utilization statistics used by the
multi-chip scaling analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Edge(Enum):
    """The four chip edges, each with one merge and one split block."""

    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"


@dataclass
class MergeSplitLink:
    """One shared chip-boundary link (a merge block feeding a split block).

    ``capacity_per_tick`` bounds how many spike packets can cross this
    edge in one 1 ms tick; TrueNorth's asynchronous boundary channels are
    fast relative to spike rates, so the default is generous, but the
    limit makes saturation observable in scaling studies.
    """

    edge: Edge
    rows: int  # number of mesh rows (or columns) multiplexed onto the link
    capacity_per_tick: int = 40_000
    crossed: int = 0
    peak_in_tick: int = 0
    _in_tick: int = 0
    dropped: int = 0

    def begin_tick(self) -> None:
        """Reset the per-tick occupancy window."""
        self._in_tick = 0

    def merge(self, row: int) -> tuple[int, bool]:
        """Tag a packet with its *row* and send it through the shared link.

        Returns (tag, accepted).  A packet beyond the tick capacity is
        counted as dropped — physical hardware would instead backpressure,
        stretching the tick; the timing model reads ``peak_in_tick`` to
        account for that.
        """
        if not (0 <= row < self.rows):
            raise ValueError(f"row {row} outside link with {self.rows} rows")
        self._in_tick += 1
        self.peak_in_tick = max(self.peak_in_tick, self._in_tick)
        if self._in_tick > self.capacity_per_tick:
            self.dropped += 1
            return row, False
        self.crossed += 1
        return row, True

    def split(self, tag: int) -> int:
        """Decode the tag on the receiving chip: route to its row."""
        if not (0 <= tag < self.rows):
            raise ValueError(f"tag {tag} outside link with {self.rows} rows")
        return tag

    @property
    def utilization(self) -> float:
        """Peak per-tick occupancy as a fraction of capacity."""
        return self.peak_in_tick / self.capacity_per_tick


@dataclass
class ChipBoundary:
    """The four merge/split links of one chip."""

    rows: int = 64
    cols: int = 64
    capacity_per_tick: int = 40_000
    links: dict = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.links = {
            Edge.EAST: MergeSplitLink(Edge.EAST, self.rows, self.capacity_per_tick),
            Edge.WEST: MergeSplitLink(Edge.WEST, self.rows, self.capacity_per_tick),
            Edge.NORTH: MergeSplitLink(Edge.NORTH, self.cols, self.capacity_per_tick),
            Edge.SOUTH: MergeSplitLink(Edge.SOUTH, self.cols, self.capacity_per_tick),
        }

    def begin_tick(self) -> None:
        """Open a new tick window on all four links."""
        for link in self.links.values():
            link.begin_tick()

    def cross(self, edge: Edge, row_or_col: int) -> bool:
        """Send one packet across *edge*; returns False when saturated.

        The merge-tag-split round trip is validated to be the identity.
        """
        link = self.links[edge]
        tag, accepted = link.merge(row_or_col)
        if accepted and link.split(tag) != row_or_col:
            raise AssertionError("merge/split tag round-trip must be the identity")
        return accepted

    @property
    def total_crossings(self) -> int:
        """Total accepted boundary crossings on all edges."""
        return sum(link.crossed for link in self.links.values())
