"""The 2D mesh network: path computation, hop accounting, defect detours.

The mesh operates on *global* coordinates: tiled chips form one seamless
grid (the merge/split boundary blocks preserve mesh semantics across
chip edges — see :mod:`repro.noc.merge_split`).

Defect tolerance: "if a core fails, we disable it and route spike events
around it" (paper Section III-C).  We model the minimal detour consistent
with X-then-Y routing: when the next router on the dimension-order path
is disabled, the packet sidesteps one hop in the orthogonal dimension,
then resumes.  Each sidestep costs two extra hops (out and back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.router import PORT_DELTA, Port, Router, dimension_order_port


@dataclass
class MeshNetwork:
    """A width x height router grid with optional disabled routers."""

    width: int
    height: int
    disabled: set = field(default_factory=set)  # {(x, y), ...}
    _routers: dict = field(default_factory=dict, init=False, repr=False)

    def router(self, x: int, y: int) -> Router:
        """Return (lazily creating) the router at (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"router ({x},{y}) outside {self.width}x{self.height} mesh")
        key = (x, y)
        if key not in self._routers:
            self._routers[key] = Router(x=x, y=y, enabled=key not in self.disabled)
        return self._routers[key]

    def disable(self, x: int, y: int) -> None:
        """Mark the router at (x, y) defective (routes detour around it)."""
        self.disabled.add((x, y))
        if (x, y) in self._routers:
            self._routers[(x, y)].enabled = False

    def _ok(self, x: int, y: int) -> bool:
        """True when (x, y) is an in-bounds, enabled router."""
        return (
            0 <= x < self.width
            and 0 <= y < self.height
            and (x, y) not in self.disabled
        )

    def _detour(
        self, x: int, y: int, dx: int, dy: int, dst_x: int, dst_y: int
    ) -> list[tuple[int, int]]:
        """Go around the disabled router at (x+dx, y+dy); +2 hops per defect.

        For an x-dimension blockage the packet steps one router aside in y
        and continues east/west in the offset row (dimension-order routing
        resumes from there and turns into y at the destination column).
        For a y-dimension blockage the destination column is already fixed
        (dst_x == x), so the packet walks an adjacent column past every
        consecutive defect and rejoins.
        """
        if dx != 0:  # blocked moving in x: sidestep into an adjacent row
            for sy in ((1, -1) if dst_y >= y else (-1, 1)):
                if self._ok(x, y + sy) and self._ok(x + dx, y + sy):
                    return [(x, y + sy), (x + dx, y + sy)]
        else:  # blocked moving in y: go around in an adjacent column
            for sx in ((1, -1) if dst_x >= x else (-1, 1)):
                if not self._ok(x + sx, y):
                    continue
                segment = [(x + sx, y)]
                k = 1
                while not self._ok(x, y + k * dy):
                    if y + k * dy == dst_y or not self._ok(x + sx, y + k * dy):
                        segment = None
                        break
                    segment.append((x + sx, y + k * dy))
                    k += 1
                if segment is not None:
                    segment.append((x + sx, y + k * dy))
                    segment.append((x, y + k * dy))
                    return segment
        return None  # local detour impossible; caller falls back to BFS

    def _bfs_path(
        self, src: tuple[int, int], dst: tuple[int, int]
    ) -> list[tuple[int, int]]:
        """Shortest enabled path (fallback when local detours fail).

        Physical TrueNorth reconfigures routing tables around defect
        clusters; BFS models that global reconfiguration.
        """
        from collections import deque

        queue = deque([src])
        parent: dict = {src: None}
        while queue:
            node = queue.popleft()
            if node == dst:
                path = []
                while node is not None:
                    path.append(node)
                    node = parent[node]
                return path[::-1]
            x, y = node
            for nxt in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if nxt not in parent and self._ok(*nxt):
                    parent[nxt] = node
                    queue.append(nxt)
        raise RuntimeError(f"mesh is partitioned: no route {src} -> {dst}")

    def route(self, src: tuple[int, int], dst: tuple[int, int]) -> list[tuple[int, int]]:
        """Compute the router path src -> dst (inclusive of both ends).

        Follows dimension-order routing, inserting minimal detours around
        disabled routers.  Raises if source or destination is disabled or
        no detour exists.
        """
        if src in self.disabled:
            raise RuntimeError(f"source router {src} is disabled")
        if dst in self.disabled:
            raise RuntimeError(f"destination router {dst} is disabled")
        x, y = src
        path = [(x, y)]
        guard = 4 * (self.width + self.height) + 16
        while (x, y) != dst:
            port = dimension_order_port(x, y, dst[0], dst[1])
            dx, dy = PORT_DELTA[port]
            nxt = (x + dx, y + dy)
            if nxt in self.disabled and nxt != dst:
                segment = self._detour(x, y, dx, dy, dst[0], dst[1])
                if segment is None:
                    # Defect cluster: splice in a globally-rerouted path.
                    segment = self._bfs_path((x, y), dst)[1:]
                path.extend(segment)
                x, y = segment[-1]
            else:
                x, y = nxt
                path.append(nxt)
            if len(path) > guard:
                raise RuntimeError(f"routing loop detected {src} -> {dst}")
        return path

    def deliver(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        """Route one packet, updating router counters; return hop count."""
        path = self.route(src, dst)
        for (x, y), (nx, ny) in zip(path[:-1], path[1:]):
            # Determine the actual port used (handles detour steps).
            for port, (dx, dy) in PORT_DELTA.items():
                if (x + dx, y + dy) == (nx, ny) and port != Port.LOCAL:
                    self.router(x, y).forwarded[port] += 1
                    break
        self.router(*dst).forwarded[Port.LOCAL] += 1
        return len(path) - 1

    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        """Hop count of the route (without mutating counters)."""
        return len(self.route(src, dst)) - 1

    def congestion_map(self) -> dict:
        """Per-router total forwarded packet counts (for hotspot analysis)."""
        return {
            key: router.total_forwarded
            for key, router in self._routers.items()
            if router.total_forwarded > 0
        }
