"""Spike packets: the single-word messages of the event-driven NoC.

"Spike events (single-word packets) are sent from neurons to axons via
the communication network to implement long-range point-to-point
connections" (paper Section III-C).  A packet carries its target core,
target axon, and delivery tick (injection tick + programmable axonal
delay 1..15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import params


@dataclass(frozen=True, order=True)
class SpikePacket:
    """One spike event in flight on the mesh."""

    inject_tick: int
    src_core: int
    dst_core: int
    dst_axon: int
    delivery_tick: int

    def __post_init__(self) -> None:
        delay = self.delivery_tick - self.inject_tick
        if not (params.MIN_DELAY <= delay <= params.MAX_DELAY):
            raise ValueError(
                f"packet delay {delay} outside [{params.MIN_DELAY}, {params.MAX_DELAY}]"
            )
        if self.dst_axon < 0:
            raise ValueError("dst_axon must be non-negative")

    @property
    def delay(self) -> int:
        """Axonal delay in ticks."""
        return self.delivery_tick - self.inject_tick
