"""Multi-chip tiling: 4x1 and 4x4 boards, and beyond.

"Individual chips also tile in 2D, with the routing network extending
across chip boundaries through peripheral merge and split blocks"
(paper Fig. 3(c)); the 16-chip board of Section VII-C implements a 4x4
array — 16M neurons and 4B synapses — with no auxiliary communication
circuitry.

A :class:`ChipArray` assembles a seamless global mesh from a grid of
chips, tracks per-chip boundary traffic via :class:`ChipBoundary`
links, and answers capacity questions for the future-systems
projections (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import params
from repro.core.chip import ChipGeometry
from repro.noc.merge_split import ChipBoundary, Edge
from repro.noc.mesh import MeshNetwork
from repro.utils.validation import require


@dataclass
class ChipArray:
    """A chips_x x chips_y tiled array of TrueNorth chips."""

    chips_x: int = 1
    chips_y: int = 1
    geometry: ChipGeometry = field(default_factory=ChipGeometry)
    link_capacity_per_tick: int = 40_000
    mesh: MeshNetwork = field(init=False)
    boundaries: dict = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        require(self.chips_x >= 1 and self.chips_y >= 1, "array must have >= 1 chip")
        self.mesh = MeshNetwork(
            width=self.chips_x * self.geometry.cores_x,
            height=self.chips_y * self.geometry.cores_y,
        )
        self.boundaries = {
            (cx, cy): ChipBoundary(
                rows=self.geometry.cores_y,
                cols=self.geometry.cores_x,
                capacity_per_tick=self.link_capacity_per_tick,
            )
            for cx in range(self.chips_x)
            for cy in range(self.chips_y)
        }

    # -- capacity -----------------------------------------------------------
    @property
    def n_chips(self) -> int:
        """Total chips in the array."""
        return self.chips_x * self.chips_y

    @property
    def n_cores(self) -> int:
        """Total core slots."""
        return self.n_chips * self.geometry.cores_per_chip

    @property
    def n_neurons(self) -> int:
        """Total neurons (256 per core)."""
        return self.n_cores * params.CORE_NEURONS

    @property
    def n_synapses(self) -> int:
        """Total synapses (256x256 per core)."""
        return self.n_cores * params.CORE_AXONS * params.CORE_NEURONS

    # -- routing --------------------------------------------------------------
    def chip_of(self, gx: int, gy: int) -> tuple[int, int]:
        """Chip coordinates containing global mesh position (gx, gy)."""
        return gx // self.geometry.cores_x, gy // self.geometry.cores_y

    def begin_tick(self) -> None:
        """Open a new tick window on every chip boundary."""
        for boundary in self.boundaries.values():
            boundary.begin_tick()

    def deliver(self, src: tuple[int, int], dst: tuple[int, int]) -> tuple[int, int]:
        """Route one packet on the global mesh, crossing chip boundaries.

        Returns (hops, boundary_crossings).  Every chip-edge crossing on
        the path goes through the source-side chip's merge/split link.
        """
        path = self.mesh.route(src, dst)
        crossings = 0
        for (x, y), (nx, ny) in zip(path[:-1], path[1:]):
            chip_a = self.chip_of(x, y)
            chip_b = self.chip_of(nx, ny)
            if chip_a == chip_b:
                continue
            crossings += 1
            if nx > x:
                edge, lane = Edge.EAST, y % self.geometry.cores_y
            elif nx < x:
                edge, lane = Edge.WEST, y % self.geometry.cores_y
            elif ny > y:
                edge, lane = Edge.NORTH, x % self.geometry.cores_x
            else:
                edge, lane = Edge.SOUTH, x % self.geometry.cores_x
            self.boundaries[chip_a].cross(edge, lane)
        self.mesh.deliver(src, dst)
        return len(path) - 1, crossings

    def boundary_traffic(self) -> dict:
        """Total accepted crossings per chip."""
        return {
            chip: boundary.total_crossings
            for chip, boundary in self.boundaries.items()
            if boundary.total_crossings > 0
        }


def board_4x1() -> ChipArray:
    """The paper's 4x1 TrueNorth array board (Section VII-B)."""
    return ChipArray(chips_x=4, chips_y=1)


def board_4x4() -> ChipArray:
    """The paper's 4x4 (16-chip) board: 16M neurons, 4B synapses."""
    return ChipArray(chips_x=4, chips_y=4)
