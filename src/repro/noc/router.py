"""Five-port mesh router: port selection under dimension-order routing.

Each TrueNorth core is "equipped with a five-port router that forms the
backbone of our 2D mesh network"; packets travel "first in the x
dimension then in the y dimension (deadlock-free dimension-order
routing)" (paper Section III-C, citing Dally & Seitz).

The router here is a functional + accounting model: it decides output
ports, tallies per-port traffic, and exposes the occupancy statistics the
timing/energy layers consume.  Flit-level arbitration is below the level
of abstraction needed for the paper's metrics (spike hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Port(Enum):
    """Router ports: four mesh neighbours plus the local core."""

    LOCAL = "local"
    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"


# Unit displacement for each mesh port.
PORT_DELTA = {
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
    Port.LOCAL: (0, 0),
}


def dimension_order_port(x: int, y: int, dst_x: int, dst_y: int) -> Port:
    """Select the output port at router (x, y) for destination (dst_x, dst_y).

    X-then-Y dimension-order routing: resolve the x offset fully before
    turning into the y dimension; deliver locally on arrival.
    """
    if dst_x > x:
        return Port.EAST
    if dst_x < x:
        return Port.WEST
    if dst_y > y:
        return Port.NORTH
    if dst_y < y:
        return Port.SOUTH
    return Port.LOCAL


@dataclass
class Router:
    """One mesh router with per-port traffic counters."""

    x: int
    y: int
    enabled: bool = True
    forwarded: dict = field(default_factory=lambda: {p: 0 for p in Port})

    def select_port(self, dst_x: int, dst_y: int) -> Port:
        """Pick the output port for a packet heading to (dst_x, dst_y)."""
        return dimension_order_port(self.x, self.y, dst_x, dst_y)

    def forward(self, dst_x: int, dst_y: int) -> Port:
        """Route one packet, updating traffic counters; return the port."""
        if not self.enabled:
            raise RuntimeError(f"router ({self.x},{self.y}) is disabled (defective core)")
        port = self.select_port(dst_x, dst_y)
        self.forwarded[port] += 1
        return port

    @property
    def total_forwarded(self) -> int:
        """Total packets that traversed this router."""
        return sum(self.forwarded.values())
