"""repro — reproduction of the SC14 TrueNorth / Compass cortical-computing system.

Public API surface; see README.md for a tour and DESIGN.md for the
paper-to-module map.
"""

from repro.core import (
    Core,
    EventCounters,
    InputSchedule,
    Network,
    Placement,
    SpikeRecord,
    run_kernel,
)

__version__ = "1.0.0"

__all__ = [
    "Core",
    "EventCounters",
    "InputSchedule",
    "Network",
    "Placement",
    "SpikeRecord",
    "run_kernel",
    "__version__",
]
