"""Stereo disparity estimation by binocular coincidence detection.

A companion to the optical-flow application in the multi-sensory
feature-extraction family the paper motivates: two rate-coded "eyes"
view the same scene with a horizontal shift; coincidence detectors
between the left image and progressively shifted copies of the right
image fire most on the detector bank matching the true disparity — the
classic cooperative-stereo correspondence principle, spiking edition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.transduction import spike_counts_by_pin
from repro.corelets.corelet import CompiledComposition, Composition, Connector
from repro.corelets.library.basic import splitter
from repro.corelets.library.temporal import coincidence
from repro.core.inputs import InputSchedule
from repro.hardware.simulator import run_truenorth
from repro.obs.log import get_logger
from repro.utils.validation import require

log = get_logger("repro.apps.stereo")


@dataclass
class StereoPipeline:
    """Compiled disparity-detector banks over one scanline geometry."""

    compiled: CompiledComposition
    n_positions: int
    disparities: tuple

    def disparity_energies(self, record) -> dict:
        """Spike counts per disparity bank."""
        return {
            d: int(
                spike_counts_by_pin(record, self.compiled.outputs[f"disp{d}"]).sum()
            )
            for d in self.disparities
        }

    def estimate_disparity(self, record) -> int:
        """Winning disparity (most active bank)."""
        energies = self.disparity_energies(record)
        return max(energies, key=energies.get)


def build_stereo_pipeline(
    n_positions: int = 16,
    disparities: tuple = (0, 1, 2, 3),
    seed: int = 0,
    name: str = "stereo",
) -> StereoPipeline:
    """One coincidence bank per candidate disparity.

    Bank d correlates left position i with right position i+d; the
    width of each bank is ``n_positions - max(disparities)`` so every
    bank sees the same number of detector pairs (fair competition).
    """
    require(n_positions >= 2, "need at least two positions")
    d_max = max(disparities)
    require(d_max < n_positions, "disparity exceeds the scanline")
    width = n_positions - d_max

    comp = Composition(name=name, seed=seed)
    ways = len(disparities)
    left = splitter(n_positions, ways, name=f"{name}/left")
    right = splitter(n_positions, ways, name=f"{name}/right")

    for k, d in enumerate(disparities):
        corr = coincidence(width, name=f"{name}/d{d}")
        left_pins = left.outputs[f"out{k}"].pins[:width]
        right_pins = right.outputs[f"out{k}"].pins[d : d + width]
        comp.connect(Connector(f"L{d}", left_pins), corr.inputs["in_a"])
        comp.connect(Connector(f"R{d}", right_pins), corr.inputs["in_b"])
        comp.export_output(f"disp{d}", corr.outputs["out"])

    comp.export_input("left", left.inputs["in"])
    comp.export_input("right", right.inputs["in"])
    compiled = comp.compile()
    log.info(
        "stereo_pipeline_built", n_positions=n_positions,
        disparities=disparities, bank_width=width,
        n_cores=compiled.network.n_cores,
    )
    return StereoPipeline(
        compiled=compiled, n_positions=n_positions, disparities=disparities
    )


def stereo_pair_inputs(
    pipeline: StereoPipeline,
    pattern: np.ndarray,
    true_disparity: int,
    ticks: int = 40,
    max_rate: float = 0.7,
    seed: int = 5,
) -> InputSchedule:
    """Rate-code a 1D pattern into both eyes with the given shift.

    The left eye sees ``pattern``; the right eye sees the same pattern
    shifted ``true_disparity`` positions left (so left[i] corresponds to
    right[i + d]).
    """
    pattern = np.asarray(pattern, dtype=np.float64)
    require(pattern.size == pipeline.n_positions, "pattern width mismatch")
    right_view = np.zeros_like(pattern)
    d = true_disparity
    if d == 0:
        right_view[:] = pattern
    else:
        right_view[d:] = pattern[:-d] if d > 0 else pattern[-d:]

    ins = InputSchedule()
    from repro.apps.transduction import rate_code_frame

    rate_code_frame(
        pattern.reshape(1, -1), pipeline.compiled.inputs["left"], ins, 0,
        ticks=ticks, max_rate=max_rate, seed=seed,
    )
    # The eyes carry independent sensor noise (distinct seeds); the
    # correlation the detectors exploit comes from the shared pattern.
    rate_code_frame(
        right_view.reshape(1, -1), pipeline.compiled.inputs["right"], ins, 0,
        ticks=ticks, max_rate=max_rate, seed=seed + 1,
    )
    return ins


def estimate_scene_disparity(
    pipeline: StereoPipeline,
    pattern: np.ndarray,
    true_disparity: int,
    ticks: int = 40,
    seed: int = 5,
):
    """Run a stereo pair; return (record, estimated disparity)."""
    ins = stereo_pair_inputs(pipeline, pattern, true_disparity, ticks, seed=seed)
    record = run_truenorth(pipeline.compiled.network, ticks + 3, ins)
    estimate = pipeline.estimate_disparity(record)
    log.info(
        "stereo_disparity_estimated", true=true_disparity, estimate=estimate,
        correct=(estimate == true_disparity), ticks=ticks,
        spikes=record.n_spikes, energies=pipeline.disparity_energies(record),
    )
    return record, estimate
