"""Synthetic streaming-video scenes with ground truth.

DESIGN.md substitution #4: the DARPA Neovision2 Tower dataset is not
redistributable, so scenes with Neovision-like content — moving and
stationary people, cyclists, cars, buses, trucks viewed from a fixed
elevated camera — are synthesized with per-frame ground-truth boxes.
Object classes differ in size, aspect ratio, speed, and intensity, which
is exactly the information the What/Where networks exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import seeded_rng
from repro.utils.validation import require

# class name -> (height, width, speed px/frame, intensity)
CLASS_PROFILES = {
    "person": (8, 3, 0.6, 0.55),
    "cyclist": (7, 5, 1.4, 0.65),
    "car": (5, 9, 2.2, 0.80),
    "bus": (8, 16, 1.6, 0.90),
    "truck": (9, 13, 1.2, 0.70),
}
CLASSES = tuple(CLASS_PROFILES)


@dataclass(frozen=True)
class GroundTruthBox:
    """One labeled object instance in one frame."""

    frame: int
    label: str
    y: int  # top
    x: int  # left
    h: int
    w: int

    @property
    def center(self) -> tuple[float, float]:
        """Box center (y, x)."""
        return (self.y + self.h / 2.0, self.x + self.w / 2.0)

    def iou(self, other: "GroundTruthBox") -> float:
        """Intersection-over-union with another box."""
        y0 = max(self.y, other.y)
        x0 = max(self.x, other.x)
        y1 = min(self.y + self.h, other.y + other.h)
        x1 = min(self.x + self.w, other.x + other.w)
        inter = max(0, y1 - y0) * max(0, x1 - x0)
        union = self.h * self.w + other.h * other.w - inter
        return inter / union if union else 0.0


@dataclass
class Scene:
    """A generated video: frames plus per-frame ground truth."""

    frames: np.ndarray  # (n_frames, height, width) in [0, 1]
    boxes: list[list[GroundTruthBox]]  # per frame

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return self.frames.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """(height, width) of each frame."""
        return self.frames.shape[1], self.frames.shape[2]


def generate_scene(
    height: int = 32,
    width: int = 48,
    n_frames: int = 12,
    n_objects: int = 3,
    classes: tuple = CLASSES,
    background_noise: float = 0.03,
    seed: int = 0,
) -> Scene:
    """Generate a fixed-camera scene with moving labeled objects."""
    require(height >= 12 and width >= 18, "scene too small for objects")
    rng = seeded_rng(seed)
    frames = np.zeros((n_frames, height, width), dtype=np.float64)
    boxes: list[list[GroundTruthBox]] = [[] for _ in range(n_frames)]

    objects = []
    for _ in range(n_objects):
        label = classes[rng.integers(0, len(classes))]
        h, w, speed, intensity = CLASS_PROFILES[label]
        y = float(rng.integers(0, max(1, height - h)))
        x = float(rng.integers(0, max(1, width - w)))
        heading = rng.choice([-1.0, 1.0])
        moving = rng.random() < 0.75  # some objects are stationary
        objects.append([label, y, x, h, w, speed * heading * moving, intensity])

    for f in range(n_frames):
        frame = rng.random((height, width)) * background_noise
        for obj in objects:
            label, y, x, h, w, vx, intensity = obj
            xi = int(round(x)) % max(1, width - w + 1)
            yi = int(round(y))
            frame[yi : yi + h, xi : xi + w] = np.maximum(
                frame[yi : yi + h, xi : xi + w],
                intensity * (0.85 + 0.3 * rng.random((h, w))),
            )
            boxes[f].append(GroundTruthBox(f, label, yi, xi, h, w))
            obj[2] = x + vx  # advance horizontal position
        frames[f] = np.clip(frame, 0.0, 1.0)

    return Scene(frames=frames, boxes=boxes)


def static_pattern(
    height: int, width: int, kind: str = "vertical-edge", seed: int = 0
) -> np.ndarray:
    """Deterministic single-frame test patterns for feature extractors."""
    ys, xs = np.mgrid[0:height, 0:width]
    if kind == "vertical-edge":
        return (xs < width // 2).astype(np.float64)
    if kind == "horizontal-edge":
        return (ys < height // 2).astype(np.float64)
    if kind == "checkerboard":
        return (((ys // 4) + (xs // 4)) % 2).astype(np.float64)
    if kind == "uniform":
        return np.full((height, width), 0.5)
    if kind == "noise":
        return seeded_rng(seed).random((height, width))
    raise ValueError(f"unknown pattern kind {kind!r}")
