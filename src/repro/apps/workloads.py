"""Full-scale workload descriptors from the paper (Section IV-B).

Network sizes, core counts, and mean firing rates are quoted directly
from the paper; the synaptic fan-out of the vision networks is not
itemized per application, so the characterization default (128, the
mid-scale of the sweep) is used, with the mean hop distance of composed
vision pipelines set lower than the random recurrent networks (vision
corelets are placed locally; hop distances are dominated by neighbour
stages).
"""

from __future__ import annotations

from repro.core.workload import WorkloadDescriptor

VISION_MEAN_HOPS = 16.0  # locally-placed pipeline stages
VISION_FANOUT = 128.0

# "ten Haar-like features in a network of 617,567 neurons in 2,605 cores
# with a 135 Hz mean firing rate"
HAAR = WorkloadDescriptor(
    name="Haar features",
    n_neurons=617_567,
    n_cores=2_605,
    rate_hz=135.0,
    active_synapses=VISION_FANOUT,
    mean_hops=VISION_MEAN_HOPS,
)

# "20-bin Local Binary Pattern feature histograms in a network of
# 813,978 neurons in 3,836 cores with a 64 Hz mean firing rate"
LBP = WorkloadDescriptor(
    name="Local Binary Patterns",
    n_neurons=813_978,
    n_cores=3_836,
    rate_hz=64.0,
    active_synapses=VISION_FANOUT,
    mean_hops=VISION_MEAN_HOPS,
)

# "a feature extraction corelet with 889,461 neurons in 3,926 cores and
# an 86 Hz mean firing rate"
SALIENCY = WorkloadDescriptor(
    name="Saliency map",
    n_neurons=889_461,
    n_cores=3_926,
    rate_hz=86.0,
    active_synapses=VISION_FANOUT,
    mean_hops=VISION_MEAN_HOPS,
)

# "a corelet with 612,458 neurons in 2,571 cores and a 5 Hz mean firing rate"
SACCADE = WorkloadDescriptor(
    name="Saccade map",
    n_neurons=612_458,
    n_cores=2_571,
    rate_hz=5.0,
    active_synapses=VISION_FANOUT,
    mean_hops=VISION_MEAN_HOPS,
)

# "660,009 neurons in 4,018 cores with a 12.8 Hz mean firing rate"
NEOVISION = WorkloadDescriptor(
    name="Neovision detection+classification",
    n_neurons=660_009,
    n_cores=4_018,
    rate_hz=12.8,
    active_synapses=VISION_FANOUT,
    mean_hops=VISION_MEAN_HOPS,
)

VISION_APPS = (NEOVISION, HAAR, LBP, SACCADE, SALIENCY)

# The GSOPS/W headline operating points (Section VI-B).
ANCHOR_A = WorkloadDescriptor(
    name="characterization 20Hz x 128syn",
    n_neurons=2**20,
    n_cores=4_096,
    rate_hz=20.0,
    active_synapses=128.0,
)
ANCHOR_C = WorkloadDescriptor(
    name="characterization 200Hz x 256syn",
    n_neurons=2**20,
    n_cores=4_096,
    rate_hz=200.0,
    active_synapses=256.0,
)


def characterization_workload(rate_hz: float, active_synapses: float) -> WorkloadDescriptor:
    """Full-chip characterization workload at one sweep point."""
    return WorkloadDescriptor(
        name=f"characterization {rate_hz:g}Hz x {active_synapses:g}syn",
        n_neurons=2**20,
        n_cores=4_096,
        rate_hz=rate_hz,
        active_synapses=active_synapses,
    )
