"""Neovision-style multi-object detection and classification (paper IV-B).

"Our system includes a Where network to detect objects, a What network
to classify objects, and a What/Where network to bind these predictions
into labeled bounding boxes ... achieving 0.85 precision and 0.80 recall
on the test set" (on DARPA Neovision2 Tower; here on the synthetic
scenes of :mod:`repro.apps.video` — DESIGN.md substitution #4).

Structure:

* **Where** — the spiking saliency pipeline detects active patches; a
  connected-components pass binds adjacent active patches into candidate
  boxes;
* **What** — a spiking ternary classifier (trained offline, deployed as
  a corelet) labels a fixed-size window around each candidate from
  block-average features;
* **What/Where** — candidates and labels merge into labeled boxes that
  are scored against ground truth by IoU.

Full-scale descriptor: :data:`repro.apps.workloads.NEOVISION`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.apps.saliency import build_saliency_pipeline, run_saliency
from repro.apps.transduction import spike_counts_by_pin, transduce_video
from repro.apps.video import GroundTruthBox, Scene, generate_scene
from repro.corelets.corelet import Composition
from repro.corelets.library.basic import splitter
from repro.corelets.library.classify import ternary_classifier, train_ternary
from repro.hardware.simulator import run_truenorth
from repro.utils.validation import require

DEFAULT_CLASSES = ("person", "car", "bus")


@dataclass(frozen=True)
class Detection:
    """One labeled detection in one frame."""

    label: str
    y: int
    x: int
    h: int
    w: int

    def as_box(self, frame: int = 0) -> GroundTruthBox:
        """Convert to a GroundTruthBox for IoU scoring."""
        return GroundTruthBox(frame, self.label, self.y, self.x, self.h, self.w)


def window_features(crop: np.ndarray, block: int = 4) -> np.ndarray:
    """Block-average features of a (window x window) crop."""
    h, w = crop.shape
    return crop.reshape(h // block, block, w // block, block).mean(axis=(1, 3)).reshape(-1)


def extract_crop(frame: np.ndarray, cy: int, cx: int, window: int) -> np.ndarray:
    """Zero-padded window x window crop centered at (cy, cx)."""
    half = window // 2
    padded = np.pad(frame, half)
    return padded[cy : cy + window, cx : cx + window]


@dataclass
class NeovisionSystem:
    """Trainable What/Where detection + classification system."""

    height: int = 32
    width: int = 48
    patch: int = 4
    window: int = 16
    block: int = 4
    classes: tuple = DEFAULT_CLASSES
    seed: int = 0
    saliency_fraction: float = 0.45
    _where: object = field(init=False, default=None)
    _what: object = field(init=False, default=None)
    weights: np.ndarray | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        require(self.window % self.block == 0, "window must tile by block")
        self._where = build_saliency_pipeline(
            self.height, self.width, self.patch, seed=self.seed
        )

    @property
    def n_features(self) -> int:
        """Classifier input dimension (block grid of the window)."""
        return (self.window // self.block) ** 2

    # -- offline training (the Compass role in the ecosystem) ----------------
    def training_set(self, n_scenes: int = 20, seed: int = 100):
        """Labeled window crops harvested from generated scenes."""
        feats, labels = [], []
        for s in range(n_scenes):
            scene = generate_scene(
                self.height, self.width, n_frames=3, n_objects=2,
                classes=self.classes, seed=seed + s,
            )
            for f in range(scene.n_frames):
                for box in scene.boxes[f]:
                    cy, cx = (int(round(v)) for v in box.center)
                    crop = extract_crop(scene.frames[f], cy, cx, self.window)
                    feats.append(window_features(crop, self.block))
                    labels.append(self.classes.index(box.label))
        return np.asarray(feats), np.asarray(labels)

    def train(self, n_scenes: int = 20, seed: int = 100, epochs: int = 60) -> None:
        """Train the What classifier offline and deploy it as a corelet."""
        feats, labels = self.training_set(n_scenes, seed)
        self.weights = train_ternary(
            feats, labels, len(self.classes), epochs=epochs, seed=self.seed
        )
        comp = Composition(name="what", seed=self.seed)
        sp = splitter(self.n_features, 2, name="what/split")
        clf = ternary_classifier(self.weights, gain=32, threshold=64, name="what/clf")
        comp.connect(sp.outputs["out0"], clf.inputs["in+"])
        comp.connect(sp.outputs["out1"], clf.inputs["in-"])
        comp.export_input("in", sp.inputs["in"])
        comp.export_output("out", clf.outputs["out"])
        self._what = comp.compile()

    # -- inference --------------------------------------------------------------
    def classify_crop(self, crop: np.ndarray, ticks: int = 24) -> str:
        """Label one window crop with the spiking What network."""
        require(self._what is not None, "call train() first")
        feats = window_features(crop, self.block)
        ins = transduce_video(
            feats.reshape(1, 1, -1), self._what.inputs["in"], ticks_per_frame=ticks,
            seed=self.seed,
        )
        rec = run_truenorth(self._what.network, ticks + 2, ins)
        rates = spike_counts_by_pin(rec, self._what.outputs["out"])
        return self.classes[int(np.argmax(rates))]

    def where(self, scene: Scene, ticks_per_frame: int = 16):
        """Run the Where network; return candidate (unlabeled) boxes."""
        _, saliency = run_saliency(
            self._where, scene.frames, ticks_per_frame=ticks_per_frame, seed=self.seed
        )
        peak = saliency.max()
        active = saliency >= self.saliency_fraction * peak if peak > 0 else saliency > 0
        labels, n_components = ndimage.label(active)
        boxes = []
        for comp_id in range(1, n_components + 1):
            ys, xs = np.nonzero(labels == comp_id)
            y0, x0 = ys.min() * self.patch, xs.min() * self.patch
            y1 = (ys.max() + 1) * self.patch
            x1 = (xs.max() + 1) * self.patch
            boxes.append((y0, x0, y1 - y0, x1 - x0))
        return boxes, saliency

    def detect(self, scene: Scene, ticks_per_frame: int = 16) -> list[Detection]:
        """Full What/Where pass: labeled bounding boxes for a scene."""
        require(self._what is not None, "call train() first")
        candidates, _ = self.where(scene, ticks_per_frame)
        frame = scene.frames[-1]
        detections = []
        for y, x, h, w in candidates:
            cy, cx = y + h // 2, x + w // 2
            crop = extract_crop(frame, cy, cx, self.window)
            detections.append(Detection(self.classify_crop(crop), y, x, h, w))
        return detections


def match_detections(
    detections: list[Detection],
    truth: list[GroundTruthBox],
    iou_threshold: float = 0.2,
) -> tuple[int, int, int]:
    """Greedy IoU matching; returns (true pos, false pos, false neg)."""
    unmatched = list(truth)
    tp = 0
    for det in detections:
        best, best_iou = None, iou_threshold
        for gt in unmatched:
            iou = det.as_box(gt.frame).iou(gt)
            if iou >= best_iou:
                best, best_iou = gt, iou
        if best is not None:
            unmatched.remove(best)
            tp += 1
    fp = len(detections) - tp
    fn = len(unmatched)
    return tp, fp, fn


def precision_recall(
    system: NeovisionSystem, n_scenes: int = 5, seed: int = 500
) -> tuple[float, float]:
    """Detection precision/recall over freshly generated test scenes."""
    tp = fp = fn = 0
    for s in range(n_scenes):
        scene = generate_scene(
            system.height, system.width, n_frames=2, n_objects=2,
            classes=system.classes, seed=seed + s,
        )
        dets = system.detect(scene)
        a, b, c = match_detections(dets, scene.boxes[-1])
        tp, fp, fn = tp + a, fp + b, fn + c
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall
