"""Probabilistically-generated recurrent characterization networks.

Paper Section IV-B: "to systematically characterize TrueNorth's
operation space and performance, we created a set of 88 probabilistically
generated recurrent networks that each use all 4,096 cores and every
neuron on the processor.  The set ... spans mean firing rates per neuron
from 0 to 200 Hz, and active synapses per neuron from 0 to 256.  Neurons
project to axons that are an average of 21.66 hops (cores) away both in
x and y dimensions."

The generator controls the two sweep axes precisely:

* **firing rate** — neurons are driven by the stochastic leak: with
  threshold T and stochastic leak magnitude lambda, a neuron accumulates
  +1 with probability lambda/256 per tick and fires once per T
  accumulations, giving rate = lambda / (256 T) per tick;
* **active synapses** — every axon's crossbar row carries exactly K
  programmed synapses, so each arriving spike performs K synaptic
  operations.  Per the paper's SOPS definition (Section V-1, conditioned
  on W_ij = 1 and A_i = 1), the op count is independent of the weight
  *value*; the default ``coupling='zero'`` uses zero-valued weights so
  the firing rate stays exactly at its programmed value, while
  ``coupling='balanced'`` programs +/-1 excitatory/inhibitory weights for
  the chaotic coupled dynamics used by the equivalence regressions.

* **hop distance** — each neuron targets a core offset drawn uniformly
  from [-2d, 2d] in x and y (mean |offset| = d ~ 21.66 at full chip
  scale), reflected at the grid border.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.chip import ChipGeometry, Placement
from repro.core.network import Core, Network
from repro.utils.rng import seeded_rng
from repro.utils.validation import require

FULL_CHIP_MEAN_HOP_CORES = 21.66


def _reflect(v: np.ndarray, side: int) -> np.ndarray:
    """Fold coordinates into [0, side) by mirror reflection at the borders."""
    if side == 1:
        return np.zeros_like(np.asarray(v))
    period = 2 * side - 2
    v = np.abs(np.asarray(v)) % period
    return np.where(v >= side, period - v, v)


def rate_parameters(rate_hz: float, threshold: int = 4) -> tuple[int, int]:
    """(stochastic leak magnitude, threshold) hitting *rate_hz*.

    rate/tick = lambda / (256 * T); lambda is quantized to an integer,
    so rates land within ~1 Hz of target at T = 4.
    """
    require(0.0 <= rate_hz <= 240.0, "generator supports rates up to 240 Hz")
    lam = int(round(256.0 * threshold * rate_hz * params.TICK_SECONDS))
    return min(lam, params.LEAK_MAX), threshold


def probabilistic_recurrent_network(
    rate_hz: float,
    active_synapses: int,
    grid_side: int = 8,
    neurons_per_core: int = params.CORE_NEURONS,
    coupling: str = "zero",
    seed: int = 0,
) -> Network:
    """Build one characterization network on a grid_side^2-core chip region.

    At ``grid_side=64`` this is the paper's full-chip network; smaller
    grids scale the mean hop distance proportionally
    (21.66 * grid_side / 64 in each dimension).
    """
    require(0 <= active_synapses <= neurons_per_core, "K must be <= neurons per core")
    require(coupling in ("zero", "balanced"), "coupling is 'zero' or 'balanced'")
    rng = seeded_rng(seed)
    n_cores = grid_side * grid_side
    lam, threshold = rate_parameters(rate_hz)

    mean_offset = max(1.0, FULL_CHIP_MEAN_HOP_CORES * grid_side / 64.0)
    half_span = max(1, int(round(2 * mean_offset)))

    net = Network(
        seed=seed,
        name=f"recurrent-r{rate_hz:g}-k{active_synapses}-g{grid_side}",
    )
    for core_id in range(n_cores):
        cy, cx = divmod(core_id, grid_side)
        # Exactly K programmed synapses per axon row.
        crossbar = np.zeros((neurons_per_core, neurons_per_core), dtype=bool)
        if active_synapses > 0:
            for axon in range(neurons_per_core):
                crossbar[axon, rng.choice(neurons_per_core, active_synapses, replace=False)] = True

        if coupling == "zero":
            weights = np.zeros((neurons_per_core, params.NUM_AXON_TYPES), dtype=np.int64)
            axon_types = np.zeros(neurons_per_core, dtype=np.int64)
        else:
            weights = np.zeros((neurons_per_core, params.NUM_AXON_TYPES), dtype=np.int64)
            weights[:, 0] = 1
            weights[:, 1] = -1
            axon_types = rng.integers(0, 2, size=neurons_per_core)

        # Targets: reflect offsets at the chip border, uniform in
        # [-half_span, half_span] (mean magnitude ~ mean_offset).
        dx = rng.integers(-half_span, half_span + 1, size=neurons_per_core)
        dy = rng.integers(-half_span, half_span + 1, size=neurons_per_core)
        tx = _reflect(cx + dx, grid_side)
        ty = _reflect(cy + dy, grid_side)
        target_core = ty * grid_side + tx

        core = Core.build(
            n_axons=neurons_per_core,
            n_neurons=neurons_per_core,
            crossbar=crossbar,
            axon_types=axon_types,
            weights=weights,
            stoch_leak=lam > 0,
            leak=lam,
            threshold=threshold,
            neg_threshold=64,
            reset_value=0,
            target_core=target_core,
            target_axon=rng.integers(0, neurons_per_core, size=neurons_per_core),
            delay=rng.integers(1, 3, size=neurons_per_core),
            name=f"recurrent/core{core_id}",
        )
        net.add_core(core)
    net.validate()
    return net


def chip_placement(grid_side: int) -> Placement:
    """Square placement matching the generator's core grid."""
    idx = np.arange(grid_side * grid_side)
    return Placement(
        chip_x=np.zeros(idx.size, dtype=np.int64),
        chip_y=np.zeros(idx.size, dtype=np.int64),
        x=idx % grid_side,
        y=idx // grid_side,
        geometry=ChipGeometry(),
    )


def characterization_grid(
    n_rates: int = 8, n_synapses: int = 11
) -> list[tuple[float, int]]:
    """The 88 (rate, active synapses) sweep points of the paper.

    8 rates spanning 25..200 Hz x 11 synapse counts spanning 0..256.
    """
    rates = np.linspace(25.0, 200.0, n_rates)
    synapses = np.round(np.linspace(0, 256, n_synapses)).astype(int)
    return [(float(r), int(k)) for r in rates for k in synapses]
