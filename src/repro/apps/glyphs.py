"""Convolutional glyph classification: the "convolutional networks" entry.

The paper's corelet library includes convolutional networks (Fig. 2).
This application classifies small synthetic glyphs (cross, square,
diagonal stripes) with a spiking pipeline:

    pixels -> conv2d (shared ternary kernels, stride) -> feature counts
           -> offline-trained ternary readout

The convolution layer is the real spiking substrate
(:func:`repro.corelets.library.convolution.conv2d`); readout training is
offline, as in the TrueNorth ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.transduction import transduce_video
from repro.corelets.library.classify import train_ternary
from repro.corelets.library.convolution import ConvLayer, conv2d
from repro.hardware.simulator import run_truenorth
from repro.utils.rng import seeded_rng
from repro.utils.validation import require

GLYPH_CLASSES = ("cross", "square", "stripes")


def draw_glyph(kind: str, size: int = 8, jitter: int = 1, seed: int = 0) -> np.ndarray:
    """Render one glyph with positional jitter and pixel noise."""
    require(kind in GLYPH_CLASSES, f"unknown glyph {kind!r}")
    rng = seeded_rng(seed)
    img = np.zeros((size, size))
    dy, dx = rng.integers(-jitter, jitter + 1, size=2)
    c = size // 2
    if kind == "cross":
        img[np.clip(c + dy, 0, size - 1), :] = 1.0
        img[:, np.clip(c + dx, 0, size - 1)] = 1.0
    elif kind == "square":
        lo, hi = 1 + dy, size - 2 + dy
        lo, hi = max(0, lo), min(size - 1, hi)
        img[lo, lo : hi + 1] = 1.0
        img[hi, lo : hi + 1] = 1.0
        img[lo : hi + 1, lo] = 1.0
        img[lo : hi + 1, hi] = 1.0
    else:  # diagonal stripes
        ys, xs = np.mgrid[0:size, 0:size]
        img[((ys + xs + dx) % 3) == 0] = 1.0
    noise = rng.random((size, size)) < 0.03
    return np.clip(img + noise * 0.5, 0.0, 1.0)


def edge_kernels() -> np.ndarray:
    """3x3 oriented-edge kernel bank (horizontal, vertical, 2 diagonals)."""
    k = np.zeros((9, 4), dtype=np.int64)
    g = lambda a: np.asarray(a, dtype=np.int64).reshape(-1)
    k[:, 0] = g([[1, 1, 1], [0, 0, 0], [-1, -1, -1]])
    k[:, 1] = g([[1, 0, -1], [1, 0, -1], [1, 0, -1]])
    k[:, 2] = g([[1, 1, 0], [1, 0, -1], [0, -1, -1]])
    k[:, 3] = g([[0, 1, 1], [-1, 0, 1], [-1, -1, 0]])
    return k


@dataclass
class GlyphClassifier:
    """Spiking conv features + offline-trained ternary readout."""

    size: int = 8
    stride: int = 2
    ticks: int = 40
    seed: int = 0
    classes: tuple = GLYPH_CLASSES
    layer: ConvLayer = field(init=False)
    weights: np.ndarray | None = field(init=False, default=None)
    _scale: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        self.layer = conv2d(
            self.size, self.size, edge_kernels(), stride=self.stride,
            gain=32, threshold=64, decay=32, seed=self.seed,
        )

    def features(self, image: np.ndarray, seed: int = 0) -> np.ndarray:
        """Spiking conv feature counts for one glyph image."""
        frames = image[None].repeat(2, axis=0)
        ins = transduce_video(
            frames, self.layer.pixel_pins, ticks_per_frame=self.ticks // 2, seed=seed
        )
        record = run_truenorth(self.layer.compiled.network, self.ticks + 2, ins)
        return self.layer.feature_map(record).reshape(-1).astype(np.float64)

    def train(self, n_per_class: int = 16, seed: int = 300, epochs: int = 80) -> None:
        """Train the ternary readout on rendered glyphs."""
        feats, labels = [], []
        for k, kind in enumerate(self.classes):
            for i in range(n_per_class):
                img = draw_glyph(kind, self.size, seed=seed + 13 * k + i)
                feats.append(self.features(img, seed=seed + i))
                labels.append(k)
        feats = np.asarray(feats)
        self._scale = feats.max() or 1.0
        self.weights = train_ternary(
            feats / self._scale, np.asarray(labels), len(self.classes),
            epochs=epochs, seed=self.seed,
        )

    def classify(self, image: np.ndarray, seed: int = 0) -> str:
        """Label one glyph image."""
        require(self.weights is not None, "call train() first")
        scores = self.features(image, seed=seed) @ self.weights
        return self.classes[int(np.argmax(scores))]

    def accuracy(self, n_per_class: int = 6, seed: int = 9000) -> float:
        """Accuracy on freshly rendered glyphs."""
        correct = total = 0
        for k, kind in enumerate(self.classes):
            for i in range(n_per_class):
                img = draw_glyph(kind, self.size, seed=seed + 41 * k + i)
                correct += self.classify(img, seed=seed + i) == kind
                total += 1
        return correct / total
