"""Multi-object tracking on the Where network's detections.

The Neovision2 Tower task involves *moving* objects from a fixed
camera; binding per-frame detections into temporal tracks gives object
velocities and stabilizes labels.  This module runs the spiking Where
network frame by frame and associates candidate boxes greedily by
centroid distance — the classical detect-then-track pattern on top of
the What/Where system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.neovision import NeovisionSystem
from repro.apps.video import Scene
from repro.utils.validation import require


@dataclass
class Track:
    """One object track across frames."""

    track_id: int
    frames: list[int] = field(default_factory=list)
    centers: list[tuple[float, float]] = field(default_factory=list)

    def add(self, frame: int, center: tuple[float, float]) -> None:
        """Extend the track with a detection."""
        self.frames.append(frame)
        self.centers.append(center)

    @property
    def length(self) -> int:
        """Number of frames in the track."""
        return len(self.frames)

    @property
    def velocity(self) -> tuple[float, float]:
        """Mean per-frame displacement (vy, vx)."""
        if self.length < 2:
            return (0.0, 0.0)
        dy = (self.centers[-1][0] - self.centers[0][0]) / (self.frames[-1] - self.frames[0])
        dx = (self.centers[-1][1] - self.centers[0][1]) / (self.frames[-1] - self.frames[0])
        return (dy, dx)


@dataclass
class Tracker:
    """Greedy nearest-centroid association of per-frame detections."""

    max_match_distance: float = 8.0
    tracks: list[Track] = field(default_factory=list)
    _next_id: int = 0
    _active: dict = field(default_factory=dict)  # track_id -> last center

    def update(self, frame: int, centers: list[tuple[float, float]]) -> None:
        """Associate this frame's detections with open tracks."""
        unmatched = list(centers)
        assignments: dict = {}
        for tid, last in sorted(self._active.items()):
            if not unmatched:
                break
            dists = [np.hypot(c[0] - last[0], c[1] - last[1]) for c in unmatched]
            best = int(np.argmin(dists))
            if dists[best] <= self.max_match_distance:
                assignments[tid] = unmatched.pop(best)
        # extend matched tracks
        for tid, center in assignments.items():
            self.tracks[tid].add(frame, center)
            self._active[tid] = center
        # close tracks that missed this frame
        for tid in list(self._active):
            if tid not in assignments:
                del self._active[tid]
        # open new tracks for leftovers
        for center in unmatched:
            track = Track(self._next_id)
            track.add(frame, center)
            self.tracks.append(track)
            self._active[self._next_id] = center
            self._next_id += 1

    def completed_tracks(self, min_length: int = 2) -> list[Track]:
        """Tracks spanning at least *min_length* frames."""
        return [t for t in self.tracks if t.length >= min_length]


def track_scene(
    system: NeovisionSystem,
    scene: Scene,
    ticks_per_frame: int = 16,
    max_match_distance: float = 8.0,
) -> list[Track]:
    """Run the Where network per frame and track the candidates."""
    require(scene.n_frames >= 2, "tracking needs at least two frames")
    tracker = Tracker(max_match_distance=max_match_distance)
    for f in range(scene.n_frames):
        sub = Scene(frames=scene.frames[f : f + 1], boxes=[scene.boxes[f]])
        boxes, _ = system.where(sub, ticks_per_frame=ticks_per_frame)
        centers = [(y + h / 2.0, x + w / 2.0) for (y, x, h, w) in boxes]
        tracker.update(f, centers)
    return tracker.completed_tracks()


def evaluate_tracking(
    system: NeovisionSystem,
    scene: Scene,
    **kwargs,
) -> dict:
    """Score tracks against ground-truth object trajectories.

    Matches each completed track to the ground-truth object with the
    closest mean centroid distance; reports coverage (tracked objects /
    objects), mean position error, and velocity-direction agreement.
    """
    tracks = track_scene(system, scene, **kwargs)
    n_objects = len(scene.boxes[0])
    truths = []
    for obj in range(n_objects):
        centers = [scene.boxes[f][obj].center for f in range(scene.n_frames)]
        truths.append(centers)

    matched = 0
    position_errors = []
    velocity_agreements = []
    used: set[int] = set()
    for track in tracks:
        best, best_err = None, float("inf")
        for obj, centers in enumerate(truths):
            if obj in used:
                continue
            errs = [
                np.hypot(c[0] - centers[f][0], c[1] - centers[f][1])
                for f, c in zip(track.frames, track.centers)
                if f < len(centers)
            ]
            if errs and np.mean(errs) < best_err:
                best, best_err = obj, float(np.mean(errs))
        if best is not None and best_err <= 10.0:
            used.add(best)
            matched += 1
            position_errors.append(best_err)
            true_v = (
                (truths[best][-1][0] - truths[best][0][0]) / max(scene.n_frames - 1, 1),
                (truths[best][-1][1] - truths[best][0][1]) / max(scene.n_frames - 1, 1),
            )
            est_v = track.velocity
            same_direction = np.sign(est_v[1]) == np.sign(true_v[1]) or abs(true_v[1]) < 0.2
            velocity_agreements.append(bool(same_direction))

    return {
        "n_tracks": len(tracks),
        "n_objects": n_objects,
        "coverage": matched / n_objects if n_objects else 0.0,
        "mean_position_error": float(np.mean(position_errors)) if position_errors else float("inf"),
        "velocity_direction_agreement": (
            float(np.mean(velocity_agreements)) if velocity_agreements else 0.0
        ),
    }
