"""Applications: the five vision systems + the 88 characterization networks."""

from repro.apps.audio import AudioClassifier, synth_event
from repro.apps.glyphs import GlyphClassifier, draw_glyph
from repro.apps.haar import build_haar_pipeline, run_haar
from repro.apps.optical_flow import build_flow_pipeline, estimate_flow
from repro.apps.lbp import build_lbp_pipeline, run_lbp
from repro.apps.neovision import NeovisionSystem, precision_recall
from repro.apps.recurrent import (
    characterization_grid,
    probabilistic_recurrent_network,
)
from repro.apps.saccade import build_saccade_pipeline, run_saccades
from repro.apps.stereo import build_stereo_pipeline, estimate_scene_disparity
from repro.apps.tracking import Tracker, evaluate_tracking, track_scene
from repro.apps.saliency import build_saliency_pipeline, run_saliency
from repro.apps.transduction import transduce_video
from repro.apps.video import Scene, generate_scene
from repro.apps.workloads import (
    ANCHOR_A,
    ANCHOR_C,
    HAAR,
    LBP,
    NEOVISION,
    SACCADE,
    SALIENCY,
    VISION_APPS,
    characterization_workload,
)

__all__ = [
    "AudioClassifier",
    "synth_event",
    "GlyphClassifier",
    "draw_glyph",
    "build_flow_pipeline",
    "estimate_flow",
    "build_haar_pipeline",
    "run_haar",
    "build_lbp_pipeline",
    "run_lbp",
    "NeovisionSystem",
    "precision_recall",
    "characterization_grid",
    "probabilistic_recurrent_network",
    "build_stereo_pipeline",
    "estimate_scene_disparity",
    "Tracker",
    "evaluate_tracking",
    "track_scene",
    "build_saccade_pipeline",
    "run_saccades",
    "build_saliency_pipeline",
    "run_saliency",
    "transduce_video",
    "Scene",
    "generate_scene",
    "ANCHOR_A",
    "ANCHOR_C",
    "HAAR",
    "LBP",
    "NEOVISION",
    "SACCADE",
    "SALIENCY",
    "VISION_APPS",
    "characterization_workload",
]
