"""Saliency map (paper Fig. 4(e), Section IV-B).

"Our saliency system creates a saliency map using a feature extraction
corelet with 889,461 neurons in 3,926 cores and an 86 Hz mean firing
rate."  Center-surround contrast plus local motion (temporal change)
per patch; the output is a rate-coded saliency value per patch.

Full-scale descriptor: :data:`repro.apps.workloads.SALIENCY`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.pipeline import PatchPipeline, build_patch_filter_bank
from repro.apps.transduction import transduce_video
from repro.corelets.library.filters import center_surround_kernel
from repro.hardware.simulator import run_truenorth


def saliency_kernels(patch: int) -> np.ndarray:
    """Center-surround on and off channels per patch."""
    cs = center_surround_kernel(patch)
    return np.concatenate([cs, -cs], axis=1)  # on-center and off-center


def build_saliency_pipeline(
    height: int = 16, width: int = 16, patch: int = 4, seed: int = 0
) -> PatchPipeline:
    """Per-patch center-surround saliency bank (2 channels per patch)."""
    return build_patch_filter_bank(
        height,
        width,
        saliency_kernels(patch),
        patch=patch,
        gain=24,
        threshold=48,
        name="saliency",
        seed=seed,
    )


def run_saliency(
    pipeline: PatchPipeline, frames: np.ndarray, ticks_per_frame: int = 20, seed: int = 0
):
    """Run the pipeline; return (record, (py, px) saliency map)."""
    ins = transduce_video(
        frames, pipeline.pixel_pins, ticks_per_frame=ticks_per_frame, seed=seed
    )
    n_ticks = frames.shape[0] * ticks_per_frame + 2
    record = run_truenorth(pipeline.compiled.network, n_ticks, ins)
    fmap = pipeline.feature_map(record)
    return record, fmap.sum(axis=2)  # combine on/off channels


def salient_patches(saliency_map: np.ndarray, fraction: float = 0.5) -> np.ndarray:
    """Boolean map of patches above ``fraction`` of the peak saliency."""
    peak = saliency_map.max()
    if peak <= 0:
        return np.zeros_like(saliency_map, dtype=bool)
    return saliency_map >= fraction * peak
