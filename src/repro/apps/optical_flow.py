"""Optical flow: direction- and velocity-selective motion estimation.

The paper lists "optical flow" among the applications deployed on the
ecosystem (Fig. 2).  The spiking implementation uses banks of Reichardt
delay-and-correlate detectors (see
:mod:`repro.corelets.library.temporal`): each image row carries one
detector per direction (+x, -x) per tuned velocity; the dominant
direction of a moving stimulus is read out as the most active bank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.transduction import spike_counts_by_pin
from repro.core.inputs import InputSchedule
from repro.corelets.corelet import CompiledComposition, Composition, Connector
from repro.corelets.library.basic import splitter
from repro.corelets.library.temporal import coincidence, delay_chain
from repro.hardware.simulator import run_truenorth
from repro.utils.validation import require


@dataclass
class FlowPipeline:
    """Compiled motion-detector bank over one image row geometry."""

    compiled: CompiledComposition
    n_positions: int
    velocities: tuple

    def direction_energies(self, record) -> dict:
        """Spike counts per (direction, velocity) bank."""
        out = {}
        for direction in ("+x", "-x"):
            for v in self.velocities:
                pins = self.compiled.outputs[f"flow{direction}v{v}"]
                out[(direction, v)] = int(spike_counts_by_pin(record, pins).sum())
        return out

    def dominant_flow(self, record) -> tuple[str, int]:
        """(direction, velocity) of the most active detector bank."""
        energies = self.direction_energies(record)
        return max(energies, key=energies.get)


def build_flow_pipeline(
    n_positions: int = 8,
    velocities: tuple = (1, 2, 4),
    seed: int = 0,
    name: str = "flow",
) -> FlowPipeline:
    """Detector banks for both x directions at several tuned velocities."""
    require(n_positions >= 2, "need at least two positions")
    comp = Composition(name=name, seed=seed)
    ways = 2 * len(velocities) * 2  # (delayed + direct) per velocity per direction
    sp = splitter(n_positions, ways, name=f"{name}/split")

    way = 0
    for direction, order in (("+x", 1), ("-x", -1)):
        for v in velocities:
            tag = f"{name}/{direction}v{v}"
            chain = delay_chain(n_positions, v - 1, name=f"{tag}/delay")
            corr = coincidence(n_positions - 1, name=f"{tag}/corr")
            delayed_src = sp.outputs[f"out{way}"]
            direct_src = sp.outputs[f"out{way + 1}"]
            way += 2
            if order < 0:
                delayed_src = Connector(delayed_src.name + "r", delayed_src.pins[::-1])
                direct_src = Connector(direct_src.name + "r", direct_src.pins[::-1])
            comp.connect(delayed_src, chain.inputs["in"])
            comp.connect(
                chain.outputs["out"].slice(0, n_positions - 1), corr.inputs["in_a"]
            )
            comp.connect(
                Connector("direct", direct_src.pins[1:]), corr.inputs["in_b"]
            )
            comp.export_output(f"flow{direction}v{v}", corr.outputs["out"])

    comp.export_input("in", sp.inputs["in"])
    return FlowPipeline(
        compiled=comp.compile(), n_positions=n_positions, velocities=velocities
    )


def moving_bar_inputs(
    pipeline: FlowPipeline,
    velocity: int,
    direction: int = +1,
    sweeps: int = 2,
) -> tuple[InputSchedule, int]:
    """Inputs for a bar sweeping across the positions; returns (ins, ticks)."""
    pins = pipeline.compiled.inputs["in"]
    n = pipeline.n_positions
    ins = InputSchedule()
    tick = 0
    for _ in range(sweeps):
        positions = range(n) if direction > 0 else range(n - 1, -1, -1)
        for pos in positions:
            ins.add(tick, pins[pos].core, pins[pos].index)
            tick += velocity
        tick += 8  # gap between sweeps
    return ins, tick + 8


def estimate_flow(
    pipeline: FlowPipeline, velocity: int, direction: int = +1, sweeps: int = 2
):
    """Run a moving-bar stimulus; return (record, (direction, velocity))."""
    ins, n_ticks = moving_bar_inputs(pipeline, velocity, direction, sweeps)
    record = run_truenorth(pipeline.compiled.network, n_ticks, ins)
    return record, pipeline.dominant_flow(record)
