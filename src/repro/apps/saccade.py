"""Saccade map: winner-take-all + inhibition-of-return (paper Fig. 4(f)).

"A saccade map selects regions of interest by applying a winner-take-all
mechanism to the saliency map, followed by temporal inhibition-of-return
to promote map exploration, using a corelet with 612,458 neurons in
2,571 cores and a 5 Hz mean firing rate."

Full-scale descriptor: :data:`repro.apps.workloads.SACCADE`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corelets.corelet import CompiledComposition, Composition
from repro.corelets.library.competition import inhibition_of_return, winner_take_all
from repro.core.inputs import InputSchedule
from repro.hardware.simulator import run_truenorth
from repro.utils.rng import seeded_rng
from repro.utils.validation import require


@dataclass
class SaccadePipeline:
    """Compiled saccade network over an n-location saliency map."""

    compiled: CompiledComposition
    n_locations: int

    def saccade_sequence(self, record) -> list[tuple[int, int]]:
        """(tick, location) winners in firing order."""
        pins = {
            (p.core, p.index): i
            for i, p in enumerate(self.compiled.outputs["saccades"])
        }
        return sorted(
            (t, pins[(c, n)]) for t, c, n in record.as_tuples() if (c, n) in pins
        )


def build_saccade_pipeline(
    n_locations: int = 16,
    suppression: int = 255,
    recovery: int = 8,
    seed: int = 0,
) -> SaccadePipeline:
    """WTA over saliency inputs, then IOR on the winning location."""
    require(1 <= n_locations <= 128, "saccade map limited to 128 locations per core")
    comp = Composition(name="saccade", seed=seed)
    wta = winner_take_all(n_locations, name="saccade/wta")
    ior = inhibition_of_return(
        n_locations,
        gain=255,
        threshold=128,
        suppression=suppression,
        recovery=recovery,
        name="saccade/ior",
    )
    comp.connect(wta.outputs["out"], ior.inputs["in"])
    comp.export_input("saliency", wta.inputs["in"])
    comp.export_output("saccades", ior.outputs["out"])
    return SaccadePipeline(compiled=comp.compile(), n_locations=n_locations)


def drive_saliency_rates(
    pipeline: SaccadePipeline,
    rates: np.ndarray,
    n_ticks: int,
    seed: int = 7,
) -> InputSchedule:
    """Poisson-code per-location saliency strengths onto the WTA input."""
    require(rates.size == pipeline.n_locations, "one rate per location")
    rng = seeded_rng(seed)
    pins = pipeline.compiled.inputs["saliency"]
    ins = InputSchedule()
    hits = rng.random((n_ticks, rates.size)) < np.clip(rates, 0, 1)[None, :]
    for tick, loc in zip(*np.nonzero(hits)):
        ins.add(int(tick), pins[loc].core, pins[loc].index)
    return ins


def run_saccades(
    pipeline: SaccadePipeline, rates: np.ndarray, n_ticks: int = 120, seed: int = 7
):
    """Drive the saccade network; return (record, saccade sequence)."""
    ins = drive_saliency_rates(pipeline, rates, n_ticks, seed=seed)
    record = run_truenorth(pipeline.compiled.network, n_ticks, ins)
    return record, pipeline.saccade_sequence(record)


def explored_locations(sequence: list[tuple[int, int]]) -> set[int]:
    """Distinct locations visited by the saccade sequence."""
    return {loc for _, loc in sequence}
