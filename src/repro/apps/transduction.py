"""Transduction: converting video frames into input spike trains.

"Frames of streaming video drive all applications" (paper Fig. 4).
Video at 30 fps against a 1 kHz tick gives ~33 ticks per frame; pixel
intensity is rate-coded — each pixel emits Bernoulli spikes with
per-tick probability proportional to its intensity — using the same
deterministic counter-based PRNG discipline as the kernel so that runs
are exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.core import prng
from repro.core.inputs import InputSchedule
from repro.corelets.corelet import GlobalPin
from repro.utils.validation import require

TICKS_PER_FRAME_30FPS = 33  # 1 kHz ticks / 30 fps

PURPOSE_TRANSDUCE = 0x54524E53  # distinct PRNG purpose for pixel coding


def rate_code_frame(
    frame: np.ndarray,
    pins: list[GlobalPin],
    schedule: InputSchedule,
    start_tick: int,
    ticks: int = TICKS_PER_FRAME_30FPS,
    max_rate: float = 0.8,
    seed: int = 0,
) -> int:
    """Rate-code one frame onto the given input pins.

    Pixel (row-major) i spikes on each tick with probability
    ``frame.flat[i] * max_rate``.  Returns the number of injected events.
    """
    flat = np.asarray(frame, dtype=np.float64).reshape(-1)
    require(len(pins) == flat.size, f"need {flat.size} pins, got {len(pins)}")
    p = np.clip(flat * max_rate, 0.0, 1.0)
    threshold = (p * 65536.0).astype(np.int64)
    units = np.arange(flat.size)
    injected = 0
    for dt in range(ticks):
        tick = start_tick + dt
        draws = prng.draw_u16(seed, PURPOSE_TRANSDUCE, 0, tick, units)
        for i in np.nonzero(draws < threshold)[0]:
            schedule.add(tick, pins[i].core, pins[i].index)
            injected += 1
    return injected


def transduce_video(
    frames: np.ndarray,
    pins: list[GlobalPin],
    ticks_per_frame: int = TICKS_PER_FRAME_30FPS,
    max_rate: float = 0.8,
    seed: int = 0,
) -> InputSchedule:
    """Rate-code a whole video (n_frames, h, w) into an input schedule."""
    schedule = InputSchedule()
    for f, frame in enumerate(frames):
        rate_code_frame(
            frame,
            pins,
            schedule,
            start_tick=f * ticks_per_frame,
            ticks=ticks_per_frame,
            max_rate=max_rate,
            seed=seed,
        )
    return schedule


def spike_counts_by_pin(record, pins: list[GlobalPin]) -> np.ndarray:
    """Per-pin spike counts from a run record (decoding helper)."""
    index = {(p.core, p.index): i for i, p in enumerate(pins)}
    counts = np.zeros(len(pins), dtype=np.int64)
    for t, c, n in record.as_tuples():
        key = (c, n)
        if key in index:
            counts[index[key]] += 1
    return counts


def spike_map(record, pins: list[GlobalPin], shape: tuple[int, int]) -> np.ndarray:
    """Reshape per-pin counts into an (h, w) activity map."""
    counts = spike_counts_by_pin(record, pins)
    require(counts.size == shape[0] * shape[1], "shape does not match pin count")
    return counts.reshape(shape)
