"""Haar-like feature extraction (paper Fig. 4(b), Section IV-B).

"Haar-like features, often used in face detection ... ten Haar-like
features in a network of 617,567 neurons in 2,605 cores with a 135 Hz
mean firing rate" over 100x200 @ 30 fps video.

The full-scale descriptor lives in :data:`repro.apps.workloads.HAAR`;
this module builds the functional pipeline at any (reduced) frame size:
per-patch banks of the five classic Haar sign patterns at two gains
(ten feature channels, as in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.apps.pipeline import PatchPipeline, build_patch_filter_bank
from repro.apps.transduction import transduce_video
from repro.corelets.library.filters import haar_kernels
from repro.hardware.simulator import run_truenorth


def build_haar_pipeline(
    height: int = 16, width: int = 16, patch: int = 4, seed: int = 0
) -> PatchPipeline:
    """Per-patch bank of ten Haar-like feature channels.

    The five Haar sign patterns each appear at two detection thresholds
    (a sensitive and a strict channel), giving the paper's ten features.
    """
    five = haar_kernels(patch)
    kernels = np.concatenate([five, five], axis=1)  # 10 channels
    # Threshold ~5 net matched pixels: a full half-pattern (8 pixels at
    # gain 24 = 192/tick) fires every tick while uniform-input shot noise
    # (std ~2 pixels) rarely crosses.
    return build_patch_filter_bank(
        height, width, kernels, patch=patch, gain=24, threshold=120, decay=16,
        name="haar", seed=seed,
    )


def run_haar(
    pipeline: PatchPipeline,
    frames: np.ndarray,
    ticks_per_frame: int = 20,
    seed: int = 0,
):
    """Transduce *frames*, run the pipeline, return (record, feature map)."""
    ins = transduce_video(
        frames, pipeline.pixel_pins, ticks_per_frame=ticks_per_frame, seed=seed
    )
    n_ticks = frames.shape[0] * ticks_per_frame + 2
    record = run_truenorth(pipeline.compiled.network, n_ticks, ins)
    return record, pipeline.feature_map(record)


def dominant_feature(feature_map: np.ndarray) -> np.ndarray:
    """(patches_y, patches_x) argmax feature index per patch."""
    return feature_map.argmax(axis=2)
