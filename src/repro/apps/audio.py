"""Audio analytics: temporal pattern classification with a liquid reservoir.

The paper motivates "real-time audio and video analytics" (Section IV-A)
and lists liquid state machines among the deployed algorithms.  This
application classifies synthetic audio-like events — rising chirps,
falling chirps, steady tones — end to end:

1. a cochlea-style filterbank (numpy, the sensor front end) converts a
   waveform into per-band energies over time;
2. band energies are rate-coded into spikes driving a recurrent liquid
   reservoir corelet;
3. windowed reservoir state counts feed an offline-trained ternary
   readout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corelets.corelet import Composition
from repro.corelets.library.classify import train_ternary
from repro.corelets.library.reservoir import liquid_reservoir, reservoir_state_features
from repro.core.inputs import InputSchedule
from repro.hardware.simulator import run_truenorth
from repro.utils.rng import seeded_rng
from repro.utils.validation import require

AUDIO_CLASSES = ("rising", "falling", "steady")
SAMPLE_RATE = 4000.0


def synth_event(kind: str, duration_s: float = 0.05, seed: int = 0) -> np.ndarray:
    """Synthesize one audio event waveform."""
    require(kind in AUDIO_CLASSES, f"unknown event kind {kind!r}")
    rng = seeded_rng(seed)
    t = np.arange(0, duration_s, 1.0 / SAMPLE_RATE)
    if kind == "rising":
        freq = 200.0 + 3000.0 * t / duration_s
    elif kind == "falling":
        freq = 3200.0 - 3000.0 * t / duration_s
    else:
        freq = np.full_like(t, 1200.0)
    phase = 2 * np.pi * np.cumsum(freq) / SAMPLE_RATE
    return np.sin(phase) + 0.05 * rng.standard_normal(t.size)


def cochlea_filterbank(
    waveform: np.ndarray, n_bands: int = 8, n_frames: int = 10
) -> np.ndarray:
    """Per-band energy over time: (n_frames, n_bands) in [0, 1].

    A bank of short-time Goertzel-style band energies over log-spaced
    center frequencies — the sensor front end feeding the spiking
    network.
    """
    freqs = np.geomspace(200.0, 1900.0, n_bands)
    frame_len = waveform.size // n_frames
    energies = np.zeros((n_frames, n_bands))
    t = np.arange(frame_len) / SAMPLE_RATE
    for f in range(n_frames):
        chunk = waveform[f * frame_len : (f + 1) * frame_len]
        for b, fc in enumerate(freqs):
            ref = np.exp(-2j * np.pi * fc * t)
            energies[f, b] = np.abs((chunk * ref).mean())
    peak = energies.max()
    return energies / peak if peak > 0 else energies


@dataclass
class AudioClassifier:
    """Liquid-state-machine audio event classifier."""

    n_bands: int = 8
    n_frames: int = 10
    ticks_per_frame: int = 4
    reservoir_neurons: int = 64
    seed: int = 0
    classes: tuple = AUDIO_CLASSES
    weights: np.ndarray | None = field(init=False, default=None)
    _compiled: object = field(init=False, default=None)

    def __post_init__(self) -> None:
        # Sparse operating point (threshold 256 at gain 32): the liquid
        # must not saturate, or input distinctions wash out of the state.
        res = liquid_reservoir(
            n_neurons=self.reservoir_neurons,
            n_inputs=self.n_bands,
            gain=32,
            threshold=256,
            seed=self.seed,
            name="audio/liquid",
        )
        comp = Composition(name="audio", seed=self.seed)
        comp.add(res)
        comp.export_input("bands", res.inputs["in"])
        comp.export_output("state", res.outputs["state"])
        self._compiled = comp.compile()

    @property
    def n_ticks(self) -> int:
        """Simulation horizon per event (input span + reservoir echo)."""
        return self.n_frames * self.ticks_per_frame + 8

    def encode(self, energies: np.ndarray, seed: int = 0) -> InputSchedule:
        """Rate-code band energies into reservoir input spikes."""
        from repro.core import prng

        pins = self._compiled.inputs["bands"]
        ins = InputSchedule()
        for f in range(self.n_frames):
            for dt in range(self.ticks_per_frame):
                tick = f * self.ticks_per_frame + dt
                draws = prng.draw_u16(
                    seed, 0x41554449, 0, tick, np.arange(self.n_bands)
                )
                active = draws < (energies[f] * 0.6 * 65536).astype(np.int64)
                for b in np.nonzero(active)[0]:
                    ins.add(tick, pins[b].core, pins[b].index)
        return ins

    def features(self, waveform: np.ndarray, seed: int = 0) -> np.ndarray:
        """Reservoir state features for one waveform."""
        energies = cochlea_filterbank(waveform, self.n_bands, self.n_frames)
        ins = self.encode(energies, seed=seed)
        record = run_truenorth(self._compiled.network, self.n_ticks, ins)
        return reservoir_state_features(
            record, self._compiled.outputs["state"],
            self.reservoir_neurons, self.n_ticks,
        )

    def train(self, n_per_class: int = 16, seed: int = 100, epochs: int = 60) -> None:
        """Train the ternary readout on synthesized labeled events."""
        feats, labels = [], []
        for k, kind in enumerate(self.classes):
            for i in range(n_per_class):
                wave = synth_event(kind, seed=seed + 17 * k + i)
                feats.append(self.features(wave, seed=seed + i))
                labels.append(k)
        feats = np.asarray(feats)
        scale = feats.max() or 1.0
        self.weights = train_ternary(
            feats / scale, np.asarray(labels), len(self.classes),
            epochs=epochs, seed=self.seed,
        )

    def classify(self, waveform: np.ndarray, seed: int = 0) -> str:
        """Label one waveform."""
        require(self.weights is not None, "call train() first")
        scores = self.features(waveform, seed=seed) @ self.weights
        return self.classes[int(np.argmax(scores))]

    def accuracy(self, n_per_class: int = 6, seed: int = 900) -> float:
        """Classification accuracy on freshly synthesized events."""
        correct = total = 0
        for k, kind in enumerate(self.classes):
            for i in range(n_per_class):
                wave = synth_event(kind, seed=seed + 31 * k + i)
                correct += self.classify(wave, seed=seed + i) == kind
                total += 1
        return correct / total
