"""Shared vision-pipeline scaffolding: per-patch filter banks.

All three feature-extraction applications (Haar, LBP, saliency) share
one structure: the frame is tiled into non-overlapping patches, each
patch's pixels fan out through a 2-way splitter (excitatory + inhibitory
copies) into a bank of signed ternary filters.  This module builds that
structure as a corelet composition and returns the compiled network with
pixel-ordered input pins and per-patch feature output pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corelets.corelet import CompiledComposition, Composition, Connector, GlobalPin
from repro.corelets.library.basic import splitter
from repro.corelets.library.filters import signed_filter
from repro.utils.validation import require


@dataclass
class PatchPipeline:
    """A compiled per-patch filter-bank pipeline."""

    compiled: CompiledComposition
    height: int
    width: int
    patch: int
    n_features: int

    @property
    def patches_y(self) -> int:
        """Patch-grid height."""
        return self.height // self.patch

    @property
    def patches_x(self) -> int:
        """Patch-grid width."""
        return self.width // self.patch

    @property
    def n_patches(self) -> int:
        """Number of patches."""
        return self.patches_y * self.patches_x

    @property
    def pixel_pins(self) -> list[GlobalPin]:
        """Input pins in row-major pixel order."""
        return self.compiled.inputs["pixels"]

    @property
    def feature_pins(self) -> list[GlobalPin]:
        """Output pins, patch-major then feature order."""
        return self.compiled.outputs["features"]

    def feature_map(self, record) -> np.ndarray:
        """(patches_y, patches_x, n_features) spike-count map from a run."""
        from repro.apps.transduction import spike_counts_by_pin

        counts = spike_counts_by_pin(record, self.feature_pins)
        return counts.reshape(self.patches_y, self.patches_x, self.n_features)


def build_patch_filter_bank(
    height: int,
    width: int,
    kernels: np.ndarray,
    patch: int = 4,
    gain: int = 24,
    threshold: int = 72,
    decay: int = 8,
    name: str = "patch-bank",
    seed: int = 0,
) -> PatchPipeline:
    """Tile the frame into patches, each feeding a signed filter bank.

    ``kernels`` is ``(patch*patch, n_features)`` in {-1, 0, +1}; the same
    bank is instantiated per patch (weight sharing by replication, as in
    corelet-composed convolution).
    """
    require(height % patch == 0 and width % patch == 0, "frame must tile by patch")
    kernels = np.asarray(kernels)
    require(kernels.shape[0] == patch * patch, "kernel rows must equal patch area")
    n_features = kernels.shape[1]
    patches_y, patches_x = height // patch, width // patch

    comp = Composition(name=name, seed=seed)
    # pixel (y, x) -> (patch index, within-patch index)
    pin_by_pixel: dict[tuple[int, int], object] = {}
    feature_pins: list = []

    for py in range(patches_y):
        for px in range(patches_x):
            tag = f"{name}/p{py}x{px}"
            sp = splitter(patch * patch, 2, name=f"{tag}/split")
            bank = signed_filter(
                kernels, gain=gain, threshold=threshold, decay=decay, name=f"{tag}/bank"
            )
            comp.connect(sp.outputs["out0"], bank.inputs["in+"])
            comp.connect(sp.outputs["out1"], bank.inputs["in-"])
            for local, pin in enumerate(sp.inputs["in"].pins):
                y = py * patch + local // patch
                x = px * patch + local % patch
                pin_by_pixel[(y, x)] = pin
            feature_pins.extend(bank.outputs["out"].pins)

    pixel_pins = [pin_by_pixel[(y, x)] for y in range(height) for x in range(width)]
    comp.export_input("pixels", Connector("pixels", pixel_pins))
    comp.export_output("features", Connector("features", feature_pins))
    return PatchPipeline(
        compiled=comp.compile(),
        height=height,
        width=width,
        patch=patch,
        n_features=n_features,
    )
