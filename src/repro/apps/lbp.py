"""Local Binary Pattern histograms (paper Fig. 4(c), Section IV-B).

"20-bin Local Binary Pattern feature histograms in a network of 813,978
neurons in 3,836 cores with a 64 Hz mean firing rate"; Fig. 4(c) shows
"eight LBP histograms extracted from 8 subpatches".

Spiking realization: each subpatch computes eight oriented local
contrast channels (the rate-coded analogue of the 8-neighbour LBP
comparisons), and a histogram corelet counts events per channel with
linear-reset population counters.  The full-scale descriptor lives in
:data:`repro.apps.workloads.LBP`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.transduction import spike_counts_by_pin, transduce_video
from repro.corelets.corelet import CompiledComposition, Composition, Connector
from repro.corelets.library.basic import splitter
from repro.corelets.library.classify import histogram
from repro.corelets.library.filters import signed_filter
from repro.hardware.simulator import run_truenorth
from repro.utils.validation import require

N_ORIENTATIONS = 8


def oriented_kernels(patch: int) -> np.ndarray:
    """Eight half-plane contrast sign patterns (LBP neighbour directions)."""
    n = patch * patch
    ys, xs = np.divmod(np.arange(n), patch)
    cy = cx = (patch - 1) / 2.0
    kernels = np.zeros((n, N_ORIENTATIONS), dtype=np.int64)
    for d in range(N_ORIENTATIONS):
        angle = 2.0 * np.pi * d / N_ORIENTATIONS
        proj = np.cos(angle) * (xs - cx) + np.sin(angle) * (ys - cy)
        kernels[:, d] = np.where(proj > 1e-9, 1, np.where(proj < -1e-9, -1, 0))
    return kernels


@dataclass
class LBPPipeline:
    """Compiled LBP pipeline: oriented contrasts + per-subpatch histograms."""

    compiled: CompiledComposition
    height: int
    width: int
    patch: int

    @property
    def n_subpatches(self) -> int:
        """Number of subpatches (histograms)."""
        return (self.height // self.patch) * (self.width // self.patch)

    def histograms(self, record) -> np.ndarray:
        """(n_subpatches, 8) histogram spike counts from a run."""
        counts = spike_counts_by_pin(record, self.compiled.outputs["histograms"])
        return counts.reshape(self.n_subpatches, N_ORIENTATIONS)


def build_lbp_pipeline(
    height: int = 16, width: int = 16, patch: int = 8, count_per_spike: int = 2, seed: int = 0
) -> LBPPipeline:
    """LBP pipeline: per-subpatch oriented contrasts into 8-bin histograms."""
    require(height % patch == 0 and width % patch == 0, "frame must tile by patch")
    kernels = oriented_kernels(patch)
    comp = Composition(name="lbp", seed=seed)

    pin_by_pixel = {}
    hist_pins = []
    for py in range(height // patch):
        for px in range(width // patch):
            tag = f"lbp/p{py}x{px}"
            sp = splitter(patch * patch, 2, name=f"{tag}/split")
            bank = signed_filter(kernels, gain=24, threshold=72, name=f"{tag}/bank")
            hist = histogram(
                np.arange(N_ORIENTATIONS),
                N_ORIENTATIONS,
                count_per_spike=count_per_spike,
                name=f"{tag}/hist",
            )
            comp.connect(sp.outputs["out0"], bank.inputs["in+"])
            comp.connect(sp.outputs["out1"], bank.inputs["in-"])
            comp.connect(bank.outputs["out"], hist.inputs["in"])
            for local, pin in enumerate(sp.inputs["in"].pins):
                y = py * patch + local // patch
                x = px * patch + local % patch
                pin_by_pixel[(y, x)] = pin
            hist_pins.extend(hist.outputs["out"].pins)

    pixel_pins = [pin_by_pixel[(y, x)] for y in range(height) for x in range(width)]
    comp.export_input("pixels", Connector("pixels", pixel_pins))
    comp.export_output("histograms", Connector("histograms", hist_pins))
    return LBPPipeline(compiled=comp.compile(), height=height, width=width, patch=patch)


def run_lbp(
    pipeline: LBPPipeline, frames: np.ndarray, ticks_per_frame: int = 20, seed: int = 0
):
    """Transduce *frames*, run the pipeline, return (record, histograms)."""
    ins = transduce_video(
        frames, pipeline.compiled.inputs["pixels"], ticks_per_frame=ticks_per_frame, seed=seed
    )
    n_ticks = frames.shape[0] * ticks_per_frame + 3
    record = run_truenorth(pipeline.compiled.network, n_ticks, ins)
    return record, pipeline.histograms(record)
