"""High-throughput serving: many concurrent sessions, one batched engine.

The ROADMAP's deployment north star is "heavy traffic from millions of
users": many independent input streams against the same model, where
throughput-per-watt is dominated by how well fixed per-step costs are
amortized.  This module is that serving layer over the batched engine
(:mod:`repro.compass.batched`):

* :class:`ModelServer` multiplexes concurrent *sessions* (one input
  stream + tick budget each) onto the lanes of one
  :class:`~repro.compass.batched.BatchedCompassSimulator` — admission
  into free lanes, eviction on completion, and per-session
  :class:`~repro.core.record.SpikeRecord` demux.  Every session is
  bit-identical to a standalone sparse run of its (seed, inputs): lane
  admission uses ``reset_lane``, which restarts the lane's PRNG
  coordinates at tick 0.
* :class:`CompiledModelCache` is an LRU over compiled networks keyed by
  :func:`model_digest`, so repeat submissions of a known model skip
  ``compile()`` entirely — the serving analogue of the per-network
  compile cache, but shared across model objects and bounded.

The CLI front door is ``python -m repro serve``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field, fields

import numpy as np

from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import CompiledNetwork, compile_network
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.core.prng import derive_stream_seed
from repro.core.record import SpikeRecord
from repro.obs.observer import Observer, active_observer
from repro.utils.validation import require


def model_digest(network: Network | CompiledNetwork) -> str:
    """Content hash of a network's dynamics: cores + seed, order exact.

    Two networks with equal digests produce identical compiled
    artifacts and identical simulations, so the digest is a safe
    compiled-network cache key across distinct model objects (two loads
    of one ``.npz``, two builds of one generator).  The display name is
    excluded — it does not affect dynamics.
    """
    inner = getattr(network, "network", None)
    net = network if inner is None else inner
    h = hashlib.sha256()
    h.update(f"seed={net.seed};cores={len(net.cores)};".encode())
    for core in net.cores:
        for f in sorted(fields(core), key=lambda f: f.name):
            arr = np.ascontiguousarray(getattr(core, f.name))
            h.update(f"{f.name}:{arr.dtype.str}:{arr.shape};".encode())
            h.update(arr.tobytes())
    return h.hexdigest()


class CompiledModelCache:
    """Bounded LRU of compiled networks keyed by :func:`model_digest`.

    ``get()`` returns the cached :class:`CompiledNetwork` for any model
    object whose digest is known, compiling (and evicting the least
    recently used entry past *capacity*) otherwise.  ``hits`` /
    ``misses`` make cache behaviour observable; the server republishes
    them through the obs catalogue.
    """

    def __init__(self, capacity: int = 8) -> None:
        require(capacity >= 1, f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CompiledNetwork] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, network: Network | CompiledNetwork) -> CompiledNetwork:
        """The compiled artifact for *network*, compiling on first sight."""
        digest = model_digest(network)
        entry = self._entries.get(digest)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(digest)
            return entry
        self.misses += 1
        compiled = compile_network(network)
        self._entries[digest] = compiled
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return compiled

    def info(self) -> dict:
        """Snapshot: size, capacity, hit/miss counts."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


@dataclass
class Session:
    """One served input stream: a schedule, a tick budget, a seed.

    Lifecycle: *pending* (no lane) -> *active* (``lane`` set, spikes
    accumulating) -> *done* (``record`` set, lane released).  The
    finished record is bit-identical to a standalone sparse run of the
    same (seed, inputs) for ``n_ticks`` ticks.
    """

    session_id: str
    inputs: InputSchedule | None
    n_ticks: int
    seed: int
    lane: int | None = None
    ticks_done: int = 0
    record: SpikeRecord | None = None
    _ticks: list = field(default_factory=list, repr=False)
    _cores: list = field(default_factory=list, repr=False)
    _neurons: list = field(default_factory=list, repr=False)

    @property
    def done(self) -> bool:
        """Whether the session has finished and holds its record."""
        return self.record is not None


class ModelServer:
    """Admission, batched advancement, and demux for concurrent sessions.

    One server drives one model on one batched engine of ``n_lanes``
    lanes.  Sessions past the lane count queue and are admitted as
    lanes free up (FIFO); each admission restarts the lane at tick 0
    with the session's seed, so serving order never changes any
    session's spikes.  ``step()`` advances every lane one tick and
    demuxes the pass's spikes to their sessions; ``run()`` drains the
    queue to completion.
    """

    def __init__(
        self,
        network: Network | CompiledNetwork,
        n_lanes: int = 8,
        *,
        cache: CompiledModelCache | None = None,
        obs: Observer | None = None,
    ) -> None:
        require(n_lanes >= 1, f"n_lanes must be >= 1, got {n_lanes}")
        self.obs = obs
        self.cache = cache
        compiled = cache.get(network) if cache is not None else compile_network(network)
        self.engine = BatchedCompassSimulator(compiled, n_lanes, obs=obs)
        self.n_lanes = n_lanes
        self._base_seed = compiled.network.seed
        self._pending: deque[Session] = deque()
        self._active: dict[int, Session] = {}
        self._free: deque[int] = deque(range(n_lanes))
        self._completed: list[Session] = []
        self._n_submitted = 0
        self._publish_serving_metrics()

    # -- metrics -----------------------------------------------------------
    def _publish_serving_metrics(self) -> None:
        obs = active_observer(self.obs)
        if obs is None:
            return
        obs.set_gauge("repro_batch_lanes", self.n_lanes)
        obs.set_gauge("repro_batch_occupancy", len(self._active) / self.n_lanes)
        obs.metrics.counter("repro_sessions_total").set(self._n_submitted)
        obs.metrics.counter("repro_sessions_completed_total").set(
            len(self._completed)
        )
        if self.cache is not None:
            obs.metrics.counter("repro_compile_cache_hits_total").set(
                self.cache.hits
            )
            obs.metrics.counter("repro_compile_cache_misses_total").set(
                self.cache.misses
            )

    # -- session lifecycle -------------------------------------------------
    def submit(
        self,
        inputs: InputSchedule | None,
        n_ticks: int,
        *,
        seed: int | None = None,
        session_id: str | None = None,
    ) -> Session:
        """Enqueue one session; it is admitted as soon as a lane frees.

        Without an explicit *seed* the session gets a decorrelated
        derived seed (:func:`~repro.core.prng.derive_stream_seed` of
        the model's base seed by submission index — the first session
        keeps the base seed itself).  Deterministic: the same
        submission sequence always produces the same seeds, records,
        and admission order.
        """
        require(n_ticks >= 1, f"n_ticks must be >= 1, got {n_ticks}")
        if seed is None:
            seed = derive_stream_seed(self._base_seed, self._n_submitted)
        session = Session(
            session_id=session_id or f"session-{self._n_submitted}",
            inputs=inputs,
            n_ticks=int(n_ticks),
            seed=int(seed),
        )
        self._n_submitted += 1
        self._pending.append(session)
        self._admit()
        return session

    def _admit(self) -> None:
        """Move pending sessions into free lanes (FIFO, lowest lane first)."""
        while self._free and self._pending:
            lane = self._free.popleft()
            session = self._pending.popleft()
            self.engine.reset_lane(lane, seed=session.seed, inputs=session.inputs)
            session.lane = lane
            self._active[lane] = session
        self._publish_serving_metrics()

    def _finalize(self, session: Session) -> None:
        """Seal a finished session's record and release its lane."""
        lane = session.lane
        counters = self.engine.lane_counters(lane)
        if session._ticks:
            session.record = SpikeRecord.from_arrays(
                np.concatenate(session._ticks),
                np.concatenate(session._cores),
                np.concatenate(session._neurons),
                counters,
            )
        else:
            empty = np.zeros(0, dtype=np.int64)
            session.record = SpikeRecord.from_arrays(empty, empty, empty, counters)
        session._ticks = session._cores = session._neurons = []
        del self._active[lane]
        self._free.append(lane)
        self._completed.append(session)

    # -- advancement -------------------------------------------------------
    def step(self) -> int:
        """One batched pass: advance every lane, demux, evict, admit.

        Returns the number of sessions that completed on this pass.
        No-op (returns 0) when no session is active.
        """
        if not self._active:
            return 0
        lanes, ticks, cores, neurons = self.engine.step_arrays()
        finished = []
        for lane, session in self._active.items():
            if lanes.size:
                mask = lanes == lane
                if mask.any():
                    session._ticks.append(ticks[mask])
                    session._cores.append(cores[mask])
                    session._neurons.append(neurons[mask])
            session.ticks_done += 1
            if session.ticks_done >= session.n_ticks:
                finished.append(session)
        for session in finished:
            self._finalize(session)
        if finished:
            self._admit()
        else:
            self._publish_serving_metrics()
        return len(finished)

    def run(self, max_passes: int | None = None) -> list[Session]:
        """Drain the queue: step until every session completes.

        With *max_passes* the server stops early after that many
        passes.  Returns every session completed so far, in completion
        order.
        """
        self._admit()
        passes = 0
        while self._active and (max_passes is None or passes < max_passes):
            self.step()
            passes += 1
        return list(self._completed)

    # -- introspection -----------------------------------------------------
    @property
    def occupancy(self) -> float:
        """Fraction of lanes holding an active session."""
        return len(self._active) / self.n_lanes

    def stats(self) -> dict:
        """Server snapshot: queue depths, passes, throughput totals."""
        out = {
            "n_lanes": self.n_lanes,
            "pending": len(self._pending),
            "active": len(self._active),
            "completed": len(self._completed),
            "submitted": self._n_submitted,
            "passes": self.engine.passes,
            "lane_ticks_served": sum(s.n_ticks for s in self._completed)
            + sum(s.ticks_done for s in self._active.values()),
            "occupancy": self.occupancy,
        }
        if self.cache is not None:
            out["cache"] = self.cache.info()
        return out
