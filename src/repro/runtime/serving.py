"""High-throughput serving: many concurrent sessions, one batched engine.

The ROADMAP's deployment north star is "heavy traffic from millions of
users": many independent input streams against the same model, where
throughput-per-watt is dominated by how well fixed per-step costs are
amortized.  This module is that serving layer over the batched engine
(:mod:`repro.compass.batched`):

* :class:`ModelServer` multiplexes concurrent *sessions* (one input
  stream + tick budget each) onto the lanes of one
  :class:`~repro.compass.batched.BatchedCompassSimulator` — admission
  into free lanes, eviction on completion, and per-session
  :class:`~repro.core.record.SpikeRecord` demux.  Every session is
  bit-identical to a standalone sparse run of its (seed, inputs): lane
  admission uses ``reset_lane``, which restarts the lane's PRNG
  coordinates at tick 0.
* :class:`CompiledModelCache` is an LRU over compiled networks keyed by
  :func:`model_digest`, so repeat submissions of a known model skip
  ``compile()`` entirely — the serving analogue of the per-network
  compile cache, but shared across model objects and bounded.

The CLI front door is ``python -m repro serve``.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import CompiledNetwork, compile_network
from repro.core import params
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.core.prng import derive_stream_seed
from repro.core.record import SpikeRecord
from repro.io.checkpoint import EngineCheckpoint, model_digest
from repro.obs.flight import write_crash_dump
from repro.obs.observer import Observer, active_observer
from repro.obs.server import TelemetryServer
from repro.obs.trace import now_ns
from repro.utils.validation import require

__all__ = [
    "CompiledModelCache", "ModelServer", "Session", "model_digest",
]


class CompiledModelCache:
    """Bounded LRU of compiled networks keyed by :func:`model_digest`.

    ``get()`` returns the cached :class:`CompiledNetwork` for any model
    object whose digest is known, compiling (and evicting the least
    recently used entry past *capacity*) otherwise.  ``hits`` /
    ``misses`` make cache behaviour observable; the server republishes
    them through the obs catalogue.
    """

    def __init__(self, capacity: int = 8) -> None:
        require(capacity >= 1, f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CompiledNetwork] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, network: Network | CompiledNetwork) -> CompiledNetwork:
        """The compiled artifact for *network*, compiling on first sight."""
        digest = model_digest(network)
        entry = self._entries.get(digest)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(digest)
            return entry
        self.misses += 1
        compiled = compile_network(network)
        self._entries[digest] = compiled
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return compiled

    def info(self) -> dict:
        """Snapshot: size, capacity, hit/miss counts."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


@dataclass
class Session:
    """One served input stream: a schedule, a tick budget, a seed.

    Lifecycle: *pending* (no lane) -> *active* (``lane`` set, spikes
    accumulating) -> *done* (``record`` set, lane released).  The
    finished record is bit-identical to a standalone sparse run of the
    same (seed, inputs) for ``n_ticks`` ticks.
    """

    session_id: str
    inputs: InputSchedule | None
    n_ticks: int
    seed: int
    lane: int | None = None
    ticks_done: int = 0
    record: SpikeRecord | None = None
    submitted_ns: int = 0
    admitted_ns: int = 0
    finalized_ns: int = 0
    preemptions: int = 0
    _ticks: list = field(default_factory=list, repr=False)
    _cores: list = field(default_factory=list, repr=False)
    _neurons: list = field(default_factory=list, repr=False)
    # Preemption state: the lane checkpoint (or its on-disk path when
    # the server has a checkpoint_dir) to restore from at readmission.
    _checkpoint: EngineCheckpoint | None = field(default=None, repr=False)
    _checkpoint_path: str | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """Whether the session has finished and holds its record."""
        return self.record is not None

    @property
    def wait_seconds(self) -> float:
        """SLO: submit -> lane admission wait (0.0 until admitted)."""
        if not self.admitted_ns:
            return 0.0
        return (self.admitted_ns - self.submitted_ns) * 1e-9

    @property
    def latency_seconds(self) -> float:
        """SLO: submit -> finalize latency (0.0 until finished)."""
        if not self.finalized_ns:
            return 0.0
        return (self.finalized_ns - self.submitted_ns) * 1e-9


class ModelServer:
    """Admission, batched advancement, and demux for concurrent sessions.

    One server drives one model on one batched engine of ``n_lanes``
    lanes.  Sessions past the lane count queue and are admitted as
    lanes free up (FIFO); each admission restarts the lane at tick 0
    with the session's seed, so serving order never changes any
    session's spikes.  ``step()`` advances every lane one tick and
    demuxes the pass's spikes to their sessions; ``run()`` drains the
    queue to completion.
    """

    def __init__(
        self,
        network: Network | CompiledNetwork,
        n_lanes: int = 8,
        *,
        cache: CompiledModelCache | None = None,
        obs: Observer | None = None,
        telemetry_port: int | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        require(n_lanes >= 1, f"n_lanes must be >= 1, got {n_lanes}")
        self.checkpoint_dir = checkpoint_dir
        if telemetry_port is not None and obs is None:
            # Live endpoints need an observer feeding them; create one
            # before the engine so its tick loop records into it.
            obs = Observer()
        self.obs = obs
        self.cache = cache
        compiled = cache.get(network) if cache is not None else compile_network(network)
        self.engine = BatchedCompassSimulator(compiled, n_lanes, obs=obs)
        self.n_lanes = n_lanes
        self._base_seed = compiled.network.seed
        self._pending: deque[Session] = deque()
        self._active: dict[int, Session] = {}
        self._free: deque[int] = deque(range(n_lanes))
        self._completed: list[Session] = []
        self._n_submitted = 0
        self._failed = False
        self._pass_wall_ns = 0
        self.telemetry: TelemetryServer | None = None
        if telemetry_port is not None:
            self.telemetry = TelemetryServer(
                obs, port=telemetry_port,
                liveness={"engine": lambda: not self._failed},
            )
        self._publish_serving_metrics()

    def close(self) -> None:
        """Shut down the telemetry server (idempotent)."""
        if self.telemetry is not None:
            self.telemetry.close()
            self.telemetry = None

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- metrics -----------------------------------------------------------
    def _publish_serving_metrics(self) -> None:
        obs = active_observer(self.obs)
        if obs is None:
            return
        obs.set_gauge("repro_batch_lanes", self.n_lanes)
        obs.set_gauge("repro_batch_occupancy", len(self._active) / self.n_lanes)
        obs.metrics.counter("repro_sessions_total").set(self._n_submitted)
        obs.metrics.counter("repro_sessions_completed_total").set(
            len(self._completed)
        )
        if self.cache is not None:
            obs.metrics.counter("repro_compile_cache_hits_total").set(
                self.cache.hits
            )
            obs.metrics.counter("repro_compile_cache_misses_total").set(
                self.cache.misses
            )

    # -- session lifecycle -------------------------------------------------
    def submit(
        self,
        inputs: InputSchedule | None,
        n_ticks: int,
        *,
        seed: int | None = None,
        session_id: str | None = None,
    ) -> Session:
        """Enqueue one session; it is admitted as soon as a lane frees.

        Without an explicit *seed* the session gets a decorrelated
        derived seed (:func:`~repro.core.prng.derive_stream_seed` of
        the model's base seed by submission index — the first session
        keeps the base seed itself).  Deterministic: the same
        submission sequence always produces the same seeds, records,
        and admission order.
        """
        require(n_ticks >= 1, f"n_ticks must be >= 1, got {n_ticks}")
        if seed is None:
            seed = derive_stream_seed(self._base_seed, self._n_submitted)
        session = Session(
            session_id=session_id or f"session-{self._n_submitted}",
            inputs=inputs,
            n_ticks=int(n_ticks),
            seed=int(seed),
            submitted_ns=now_ns(),
        )
        self._n_submitted += 1
        self._pending.append(session)
        self._admit()
        return session

    def _admit(self) -> None:
        """Move pending sessions into free lanes (FIFO, lowest lane first).

        A fresh session's lane is reset to tick 0 with the session
        seed; a preempted session's lane is *restored* from its
        checkpoint instead, so the resumed run continues mid-stream
        with identical PRNG coordinates — bit-identical to a session
        that was never preempted.
        """
        obs = active_observer(self.obs)
        while self._free and self._pending:
            lane = self._free.popleft()
            session = self._pending.popleft()
            ckpt = session._checkpoint
            if ckpt is None and session._checkpoint_path is not None:
                ckpt = EngineCheckpoint.load(
                    session._checkpoint_path, self.engine.network
                )
            if ckpt is not None:
                self.engine.restore_lane(lane, ckpt)
                session._checkpoint = None
                session._checkpoint_path = None
            else:
                self.engine.reset_lane(
                    lane, seed=session.seed, inputs=session.inputs
                )
            session.lane = lane
            session.admitted_ns = now_ns()
            self._active[lane] = session
            if obs is not None:
                obs.metrics.histogram("repro_session_wait_seconds").observe(
                    session.wait_seconds
                )
        self._publish_serving_metrics()

    def preempt(self, session_id: str) -> Session:
        """Evict an active session, checkpointing its lane for later.

        The lane's complete state (membranes, in-flight ring slice,
        staged inputs, counters, lane tick) is captured as an
        :class:`~repro.io.checkpoint.EngineCheckpoint` — written to
        ``checkpoint_dir`` when the server has one, held in memory
        otherwise — the lane is freed, and the session requeues at the
        back of the pending queue.  On readmission the lane is restored
        rather than reset, so the finished record is bit-identical to
        an unpreempted run; only latency changes.  Accumulated spikes
        stay on the session object throughout.
        """
        session = next(
            (s for s in self._active.values() if s.session_id == session_id),
            None,
        )
        require(
            session is not None,
            f"session {session_id!r} is not active (cannot preempt)",
        )
        lane = session.lane
        ckpt = self.engine.snapshot_lane(lane)
        obs = active_observer(self.obs)
        if self.checkpoint_dir is not None:
            path = os.path.join(
                self.checkpoint_dir, f"{session.session_id}.npz"
            )
            n_bytes = ckpt.save(path)
            session._checkpoint_path = path
            if obs is not None:
                obs.metrics.counter("repro_checkpoint_bytes_total").inc(n_bytes)
        else:
            session._checkpoint = ckpt
        if obs is not None:
            obs.metrics.counter("repro_checkpoints_total").inc()
        session.preemptions += 1
        session.lane = None
        del self._active[lane]
        self._free.append(lane)
        self._pending.append(session)
        self._publish_serving_metrics()
        return session

    def _finalize(self, session: Session) -> None:
        """Seal a finished session's record and release its lane."""
        lane = session.lane
        counters = self.engine.lane_counters(lane)
        if session._ticks:
            session.record = SpikeRecord.from_arrays(
                np.concatenate(session._ticks),
                np.concatenate(session._cores),
                np.concatenate(session._neurons),
                counters,
            )
        else:
            empty = np.zeros(0, dtype=np.int64)
            session.record = SpikeRecord.from_arrays(empty, empty, empty, counters)
        session._ticks = session._cores = session._neurons = []
        session.finalized_ns = now_ns()
        del self._active[lane]
        self._free.append(lane)
        self._completed.append(session)
        obs = active_observer(self.obs)
        if obs is not None:
            obs.metrics.histogram("repro_session_latency_seconds").observe(
                session.latency_seconds
            )

    # -- advancement -------------------------------------------------------
    def step(self) -> int:
        """One batched pass: advance every lane, demux, evict, admit.

        Returns the number of sessions that completed on this pass.
        No-op (returns 0) when no session is active.
        """
        if not self._active:
            return 0
        begin = now_ns()
        try:
            lanes, ticks, cores, neurons = self.engine.step_arrays()
        except Exception as err:
            # Leave a postmortem behind before surfacing the failure;
            # /health flips to "failed" via the engine liveness probe.
            self._failed = True
            write_crash_dump(
                self.obs, "serving_step_failed",
                detail=f"pass={self.engine.passes}", exc=err,
                sanitize_report=self.engine.sanitize_report,
            )
            raise
        self._pass_wall_ns += now_ns() - begin
        finished = []
        for lane, session in self._active.items():
            if lanes.size:
                mask = lanes == lane
                if mask.any():
                    session._ticks.append(ticks[mask])
                    session._cores.append(cores[mask])
                    session._neurons.append(neurons[mask])
            session.ticks_done += 1
            if session.ticks_done >= session.n_ticks:
                finished.append(session)
        for session in finished:
            self._finalize(session)
        if finished:
            self._admit()
        else:
            self._publish_serving_metrics()
        return len(finished)

    def run(self, max_passes: int | None = None) -> list[Session]:
        """Drain the queue: step until every session completes.

        With *max_passes* the server stops early after that many
        passes.  Returns every session completed so far, in completion
        order.
        """
        self._admit()
        passes = 0
        while self._active and (max_passes is None or passes < max_passes):
            self.step()
            passes += 1
        return list(self._completed)

    # -- introspection -----------------------------------------------------
    @property
    def occupancy(self) -> float:
        """Fraction of lanes holding an active session.

        Safe at any point in the lifecycle, including before the first
        :meth:`step` (0.0 with nothing admitted).
        """
        if not self.n_lanes:  # defensive: constructor requires >= 1
            return 0.0
        return len(self._active) / self.n_lanes

    def stats(self) -> dict:
        """Server snapshot: queue depths, passes, throughput, SLO rates.

        Safe before the first :meth:`step` — the derived rates carry
        the same zero-pass guards as ``StreamReport`` (no passes ->
        0.0; passes with no measurable wall time -> ``inf``), so a
        freshly constructed server never raises from a stats scrape.
        """
        passes = self.engine.passes
        wall_s = self._pass_wall_ns * 1e-9
        lane_ticks = sum(s.n_ticks for s in self._completed) + sum(
            s.ticks_done for s in self._active.values()
        )
        out = {
            "n_lanes": self.n_lanes,
            "pending": len(self._pending),
            "active": len(self._active),
            "completed": len(self._completed),
            "submitted": self._n_submitted,
            "passes": passes,
            "lane_ticks_served": lane_ticks,
            "occupancy": self.occupancy,
            "wall_seconds": wall_s,
            "mean_pass_seconds": (
                0.0 if not passes else (wall_s / passes)
            ),
            "lane_ticks_per_second": (
                0.0 if not lane_ticks
                else (lane_ticks / wall_s if wall_s > 0.0 else float("inf"))
            ),
            "real_time_factor": (
                0.0 if not passes
                else (
                    (passes * params.TICK_SECONDS) / wall_s
                    if wall_s > 0.0 else float("inf")
                )
            ),
        }
        if self.cache is not None:
            out["cache"] = self.cache.info()
        return out
