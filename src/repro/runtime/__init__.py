"""Deployment runtime: continuous streaming around the simulators."""

from repro.runtime.serving import (
    CompiledModelCache,
    ModelServer,
    Session,
    model_digest,
)
from repro.runtime.streaming import (
    FrameSource,
    SceneSource,
    StreamingRuntime,
    StreamReport,
)

__all__ = [
    "CompiledModelCache",
    "FrameSource",
    "ModelServer",
    "SceneSource",
    "Session",
    "StreamingRuntime",
    "StreamReport",
    "model_digest",
]
