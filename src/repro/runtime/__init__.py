"""Deployment runtime: continuous streaming around the simulators."""

from repro.runtime.streaming import (
    FrameSource,
    SceneSource,
    StreamingRuntime,
    StreamReport,
)

__all__ = [
    "FrameSource",
    "SceneSource",
    "StreamingRuntime",
    "StreamReport",
]
