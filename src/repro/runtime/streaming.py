"""Streaming runtime: continuous sensor-to-decision operation.

The deployed TrueNorth systems (the NS1e-style boards of paper Fig. 1(f))
run continuously: frames stream in at 30 fps, are transduced to spikes,
the chip advances in real time, and output spikes stream to consumers.
This runtime reproduces that loop around either simulator expression:

* a :class:`FrameSource` produces frames on demand;
* each frame is rate-coded over its tick budget and injected;
* output spikes are delivered to a sink callback per tick;
* the :class:`StreamReport` accounts the real-time behaviour: ticks
  processed, wall-clock per tick, and the real-time factor this host
  achieves (the software expression runs slower than biology — exactly
  the gap the chip closes).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.apps.transduction import rate_code_frame
from repro.apps.video import Scene
from repro.compass.compile import CompiledNetwork
from repro.compass.engine import select_engine
from repro.core import params
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.obs.flight import write_crash_dump
from repro.obs.observer import NULL_SPAN, Observer, active_observer
from repro.obs.server import TelemetryServer
from repro.obs.trace import now_ns
from repro.utils.validation import require


class FrameSource:
    """Base frame source: iterate to get (frame_index, frame) pairs."""

    def frames(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield frames in presentation order."""
        raise NotImplementedError


@dataclass
class SceneSource(FrameSource):
    """Frame source over a generated scene, optionally looping."""

    scene: Scene
    loops: int = 1

    def frames(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield every scene frame, repeated ``loops`` times."""
        index = 0
        for _ in range(self.loops):
            for frame in self.scene.frames:
                yield index, frame
                index += 1


@dataclass
class StreamReport:
    """Accounting of one streaming session.

    A thin view kept for compatibility: when the runtime carries an
    :class:`~repro.obs.observer.Observer`, the same quantities are
    published to the uniform metric catalogue
    (``repro_frames_total``, ``repro_input_events_total``,
    ``repro_output_spikes_total``, ``repro_wall_seconds_total``), where
    they export to JSON/Prometheus alongside the engine metrics.
    """

    ticks: int = 0
    frames: int = 0
    input_events: int = 0
    output_spikes: int = 0
    wall_seconds: float = 0.0

    @property
    def wall_per_tick_s(self) -> float:
        """Mean wall-clock seconds per simulated tick."""
        return self.wall_seconds / self.ticks if self.ticks else 0.0

    @property
    def real_time_factor(self) -> float:
        """Simulated time / wall time (1.0 = real time, <1 = slower).

        Degenerate sessions are well-defined rather than divide-by-zero
        prone: zero ticks means no simulated time, so the factor is 0.0
        regardless of wall clock; ticks with unmeasurably small wall
        time report infinity.
        """
        if self.ticks == 0:
            return 0.0
        if self.wall_seconds == 0.0:
            return float("inf")
        return self.ticks * params.TICK_SECONDS / self.wall_seconds


class StreamingRuntime:
    """Continuous frame -> spikes -> simulator -> sink loop."""

    def __init__(
        self,
        simulator,
        input_pins,
        ticks_per_frame: int = 33,
        max_rate: float = 0.8,
        seed: int = 0,
        engine: str = "auto",
        obs: Observer | None = None,
        telemetry_port: int | None = None,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        """Wrap *simulator* (or build one) in the streaming loop.

        *simulator* may be any constructed kernel expression, or a
        :class:`~repro.core.network.Network` /
        :class:`~repro.compass.compile.CompiledNetwork`, in which case
        :func:`repro.compass.engine.select_engine` constructs the
        *engine* expression for it (``"auto"`` picks the sparse path).

        With *obs* attached, each frame's transduce-and-advance window
        becomes a ``frame`` span and the session totals publish to the
        uniform metric catalogue; when the runtime constructs the
        simulator itself, the same observer is threaded into it, so one
        trace covers frames and tick phases end to end.

        With *checkpoint_every* (and an engine exposing ``snapshot()``),
        the runtime captures an engine checkpoint every that many ticks
        — written as ``ckpt-<tick>.npz`` under *checkpoint_dir* when one
        is given, held in memory as :attr:`last_checkpoint` either way
        — and a crashed stream's postmortem bundle carries the latest
        one, so long sessions resume from the last good tick instead of
        tick 0.
        """
        require(ticks_per_frame >= 1, "need at least one tick per frame")
        if telemetry_port is not None and obs is None:
            obs = Observer()
        self.obs = obs
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        #: Most recent periodic checkpoint (None until the first one).
        self.last_checkpoint = None
        if isinstance(simulator, (Network, CompiledNetwork)):
            simulator = select_engine(simulator, engine, obs=obs)
        self.simulator = simulator
        self.input_pins = input_pins
        self.ticks_per_frame = ticks_per_frame
        self.max_rate = max_rate
        self.seed = seed
        # Engines marked _records_flight feed the shared observer's
        # flight ring themselves; the runtime records rows only when
        # wrapping an engine that does not (the reference simulator, or
        # a simulator carrying a different observer).
        self._flight_self = not (
            getattr(simulator, "_records_flight", False)
            and getattr(simulator, "obs", None) is obs
        )
        self.telemetry: TelemetryServer | None = None
        if telemetry_port is not None:
            self.telemetry = TelemetryServer(obs, port=telemetry_port)

    def close(self) -> None:
        """Shut down the telemetry server (idempotent)."""
        if self.telemetry is not None:
            self.telemetry.close()
            self.telemetry = None

    def _maybe_checkpoint(self, tick_cursor: int, obs: Observer | None) -> None:
        """Capture a periodic checkpoint when the cadence says so.

        No-op without ``checkpoint_every`` or on engines that do not
        expose ``snapshot()`` (the reference per-core simulators expose
        the legacy path instead).
        """
        if not self.checkpoint_every or tick_cursor % self.checkpoint_every:
            return
        snapshot = getattr(self.simulator, "snapshot", None)
        if snapshot is None:
            return
        with (obs.span("checkpoint", tick=tick_cursor)
              if obs is not None else NULL_SPAN):
            ckpt = snapshot()
        if not hasattr(ckpt, "save"):  # batched: a list of lane checkpoints
            return
        self.last_checkpoint = ckpt
        n_bytes = 0
        if self.checkpoint_dir is not None:
            n_bytes = ckpt.save(
                os.path.join(self.checkpoint_dir, f"ckpt-{tick_cursor}.npz")
            )
        if obs is not None:
            obs.metrics.counter("repro_checkpoints_total").inc()
            if n_bytes:
                obs.metrics.counter("repro_checkpoint_bytes_total").inc(n_bytes)

    def _tick(self, sink, tick_cursor: int, report: StreamReport,
              obs: Observer | None = None) -> None:
        """Advance one tick, preferring the array-returning hot path.

        Engines exposing ``step_arrays()`` (the sparse and parallel
        expressions) stay vectorized end to end: per-spike Python tuples
        are materialized only when a *sink* actually consumes them.
        With an active *obs* and an engine that does not feed the flight
        ring itself (the reference simulator), the runtime records the
        whole-tick flight row here.
        """
        flight_obs = obs if (obs is not None and self._flight_self) else None
        if flight_obs is not None:
            begin = now_ns()
        step_arrays = getattr(self.simulator, "step_arrays", None)
        if step_arrays is not None:
            tick, core_ids, neurons = step_arrays()
            n_spikes = int(core_ids.size)
            report.output_spikes += n_spikes
            if sink is not None:
                sink(
                    tick_cursor,
                    [
                        (tick, int(cc), int(nn))
                        for cc, nn in zip(core_ids, neurons)
                    ],
                )
        else:
            spikes = self.simulator.step()
            n_spikes = len(spikes)
            report.output_spikes += n_spikes
            if sink is not None:
                sink(tick_cursor, spikes)
        if flight_obs is not None:
            counters = getattr(self.simulator, "counters", None)
            flight_obs.flight_tick(
                tick_cursor, begin, now_ns(), n_spikes,
                getattr(counters, "messages", 0),
            )

    def run(
        self,
        source: FrameSource,
        sink: Callable[[int, list], None] | None = None,
        drain_ticks: int = 2,
    ) -> StreamReport:
        """Stream every frame from *source*; return the session report.

        ``sink(tick, spikes)`` receives each tick's output spikes as
        (tick, core, neuron) tuples; ``drain_ticks`` extra ticks run
        after the last frame so in-flight spikes land.
        """
        report = StreamReport()
        obs = active_observer(self.obs)
        start = time.perf_counter()
        tick_cursor = 0
        try:
            for frame_index, frame in source.frames():
                with (obs.span("frame", frame=frame_index)
                      if obs is not None else NULL_SPAN):
                    schedule = InputSchedule()
                    report.input_events += rate_code_frame(
                        frame,
                        self.input_pins,
                        schedule,
                        start_tick=tick_cursor,
                        ticks=self.ticks_per_frame,
                        max_rate=self.max_rate,
                        seed=self.seed,
                    )
                    self.simulator.load_inputs(schedule)
                    for _ in range(self.ticks_per_frame):
                        self._tick(sink, tick_cursor, report, obs)
                        tick_cursor += 1
                        report.ticks += 1
                        self._maybe_checkpoint(tick_cursor, obs)
                    report.frames += 1
            for _ in range(drain_ticks):
                self._tick(sink, tick_cursor, report, obs)
                tick_cursor += 1
                report.ticks += 1
                self._maybe_checkpoint(tick_cursor, obs)
        except Exception as err:
            # Postmortem before surfacing: the stream's flight ring and
            # metric snapshot survive the failed session — with the
            # latest periodic checkpoint alongside when one was taken.
            write_crash_dump(
                self.obs, "streaming_run_failed",
                detail=f"tick={tick_cursor}", exc=err,
                checkpoint=self.last_checkpoint,
            )
            raise
        report.wall_seconds = time.perf_counter() - start
        if obs is not None:
            metrics = obs.metrics
            metrics.counter("repro_frames_total").inc(report.frames)
            metrics.counter("repro_input_events_total").inc(report.input_events)
            metrics.counter("repro_output_spikes_total").inc(report.output_spikes)
            metrics.counter("repro_wall_seconds_total").inc(report.wall_seconds)
        return report
