"""Static analysis for the reproduction: model checker + source lint.

Two prongs share one diagnostic vocabulary
(:mod:`repro.lint.diagnostics`):

* the **model checker** (:mod:`repro.lint.model`,
  :mod:`repro.lint.rules`) statically verifies TrueNorth's architectural
  invariants — 9-bit weights, delays 1-15, 4 axon types, routing onto
  real (core, axon) pairs, 20-bit membrane interval analysis, PRNG
  coordinate uniqueness, partition coverage — over ``Network`` /
  ``CompiledNetwork`` objects, with stable ``TN###`` codes;
* the **determinism source lint** (:mod:`repro.lint.source`) enforces
  repo-level invariants the kernel's bit-identity depends on (no hidden
  randomness, no wall clocks in tick paths, shared-memory hygiene,
  integer-only kernel arithmetic), with ``SL###`` codes.

``compass.compile()`` and ``Network.validate()`` call
:func:`check_network`, so every engine — reference, fast, parallel,
hardware — fails fast through the same front door.  The CLI surface is
``python -m repro lint`` and ``tools/run_lint.py``.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Location,
    Severity,
)
from repro.lint.model import (
    check_activity_gating,
    check_core,
    check_network,
    check_partition_map,
    check_replica_seeds,
    lint_activity_gating,
    lint_core,
    lint_network,
    lint_partition_map,
    lint_replica_seeds,
)
from repro.lint.rules import CODES
from repro.lint.source import SOURCE_CODES, lint_file, lint_paths, lint_source_text

__all__ = [
    "CODES",
    "Diagnostic",
    "LintError",
    "LintReport",
    "Location",
    "SOURCE_CODES",
    "Severity",
    "check_activity_gating",
    "check_core",
    "check_network",
    "check_partition_map",
    "check_replica_seeds",
    "lint_activity_gating",
    "lint_core",
    "lint_file",
    "lint_network",
    "lint_partition_map",
    "lint_paths",
    "lint_replica_seeds",
    "lint_source_text",
]
