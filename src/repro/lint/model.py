"""Static model checker: one front door for network validation.

:func:`lint_network` runs every model rule (:mod:`repro.lint.rules`)
over a :class:`~repro.core.network.Network` (or the network behind a
:class:`~repro.compass.compile.CompiledNetwork`) and returns a
:class:`~repro.lint.diagnostics.LintReport`.  :func:`check_network` is
the fail-fast form used by ``compass.compile()`` — and, through
``Network.validate()`` / ``Core.validate()``, by every other engine and
I/O path — so a bad model raises one exception type
(:class:`~repro.lint.diagnostics.LintError`) with stable diagnostic
codes before any simulator state is built.

Rule ordering matters: value-range, routing, overflow, and PRNG rules
assume structurally sound arrays, so cores with TN0xx findings are
excluded from the later passes instead of crashing them.
"""

from __future__ import annotations

import numpy as np

from repro.lint import rules
from repro.lint.diagnostics import LintReport, Severity


def _as_network(network):
    """Accept a Network, CompiledNetwork, or CompiledPartition-like."""
    inner = getattr(network, "network", None)
    return inner if inner is not None else network


def lint_core(core, core_id: int | None = None) -> LintReport:
    """Lint one core in isolation (structure, ranges, geometry, PRNG)."""
    report = LintReport(subject=f"core {core_id}" if core_id is not None else "core")
    structural = list(rules.check_core_structure(core, core_id))
    report.extend(structural)
    if any(d.severity >= Severity.ERROR for d in structural):
        return report
    report.extend(rules.check_core_ranges(core, core_id))
    report.extend(rules.check_core_geometry(core, core_id))
    report.extend(rules.check_prng_coordinates(core, core_id))
    return report


def lint_network(network) -> LintReport:
    """Run the full model-rule suite; never raises on a bad model."""
    network = _as_network(network)
    name = getattr(network, "name", "") or "network"
    report = LintReport(subject=name)

    cores = getattr(network, "cores", None)
    if not cores:
        report.add(rules._diag("TN003", "network must contain at least one core"))
        return report

    sound = True
    for core_id, core in enumerate(cores):
        core_report = lint_core(core, core_id)
        report.extend(core_report.diagnostics)
        sound = sound and core_report.ok

    # Network-wide rules need every core structurally sound.
    if sound:
        report.extend(rules.check_network_routing(network))
        report.extend(rules.check_membrane_overflow(network))
    return report


def lint_partition_map(n_cores: int, rank_of_core: np.ndarray,
                       n_ranks: int) -> LintReport:
    """Lint a partition rank map against a network's core count."""
    report = LintReport(subject=f"partition over {n_cores} cores")
    report.extend(rules.check_partition_map(n_cores, rank_of_core, n_ranks))
    return report


def check_network(network, strict: bool = True) -> LintReport:
    """Lint *network* and raise :class:`LintError` on findings.

    With ``strict=True`` (the compile-time hook) any ERROR-severity
    finding raises; warnings are returned in the report for the caller
    to surface.  With ``strict=False`` the report is returned without
    raising regardless of content.
    """
    report = lint_network(network)
    if strict:
        report.raise_for(Severity.ERROR)
    return report


def check_core(core, core_id: int | None = None, strict: bool = True) -> LintReport:
    """Lint one core and raise :class:`LintError` on errors."""
    report = lint_core(core, core_id)
    if strict:
        report.raise_for(Severity.ERROR)
    return report


def check_partition_map(n_cores: int, rank_of_core: np.ndarray, n_ranks: int,
                        strict: bool = True) -> LintReport:
    """Lint a rank map and raise :class:`LintError` on coverage errors."""
    report = lint_partition_map(n_cores, rank_of_core, n_ranks)
    if strict:
        report.raise_for(Severity.ERROR)
    return report


def lint_activity_gating(network) -> LintReport:
    """Advisory lint: does the activity gate have anything to skip?

    Deliberately *not* part of :func:`lint_network`: a network where
    every neuron is always-active (TN701) is a legitimate model — the
    recurrent builtins are fully active by design — it just gains
    nothing from ``gated=True`` on the sparse engines.  Callers tuning
    for throughput ask here explicitly.
    """
    network = _as_network(network)
    name = getattr(network, "name", "") or "network"
    report = LintReport(subject=name)
    report.extend(rules.check_activity_gating(network))
    return report


def check_activity_gating(network, strict: bool = False) -> LintReport:
    """Advisory gating check; ``strict=True`` raises at WARNING.

    Default is non-strict (TN701 is a tuning hint, not a model defect).
    """
    report = lint_activity_gating(network)
    if strict:
        report.raise_for(Severity.WARNING)
    return report


def lint_replica_seeds(seeds, stochastic: bool = True) -> LintReport:
    """Lint a batched engine's per-lane seed vector (TN401, batched form)."""
    report = LintReport(subject=f"replica seeds over {len(seeds)} lanes")
    report.extend(rules.check_replica_seeds(seeds, stochastic))
    return report


def check_replica_seeds(seeds, stochastic: bool = True,
                        strict: bool = True) -> LintReport:
    """Lint replica seeds; duplicate-seed findings are warnings, so the
    strict form raises only if a future rule escalates to ERROR."""
    report = lint_replica_seeds(seeds, stochastic)
    if strict:
        report.raise_for(Severity.ERROR)
    return report
