"""Determinism source lint: AST checks over the repo's own code.

The kernel's bit-identity guarantee — identical spikes from every
expression for identical (network, seed, inputs) — only holds if the
*source* obeys a handful of repo invariants that no runtime test can
enforce exhaustively.  This module checks them statically with ``SL###``
codes:

* ``SL101`` — the stdlib :mod:`random` module is banned (global hidden
  state; not counter-based);
* ``SL102`` — ``np.random.default_rng()`` without an explicit seed is
  banned everywhere (OS-entropy seeding breaks reproducibility);
* ``SL103`` — even seeded ``default_rng`` calls must go through the
  :func:`repro.utils.rng.seeded_rng` helper so seeding discipline has
  one auditable home;
* ``SL104`` — wall-clock reads (``time.time``, ``perf_counter``, ...)
  are banned inside ``core/`` and ``compass/`` tick paths (profiling
  hooks carry an explicit pragma);
* ``SL105`` — every ``multiprocessing.shared_memory`` ``create=True``
  must be paired with ``.close()`` and ``.unlink()`` calls in the same
  class, or segments leak across runs; additionally, a class holding an
  ``np.ndarray(..., buffer=...)`` view in an attribute must reassign
  that attribute somewhere (a release path), or the lingering buffer
  export makes segment close raise ``BufferError`` — the SpanStrip /
  ParallelCompassSimulator discipline;
* ``SL106`` — float literals must not enter arithmetic in the integer
  kernel modules (``core/kernel.py``, ``core/prng.py``,
  ``compass/fast.py``); the datapath is integer-exact.

Suppression: a finding on a line containing ``# repro-lint: allow=CODE``
(comma-separated codes allowed) is skipped — the pragma doubles as an
in-source audit trail of every sanctioned exception.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, LintReport, Location, Severity


@dataclass(frozen=True)
class SourceRuleInfo:
    """Registry entry for one source-lint code."""

    code: str
    title: str
    severity: Severity
    hint: str


#: Every code the source lint can emit (rendered in docs/lint.md).
SOURCE_CODES: dict[str, SourceRuleInfo] = {
    info.code: info
    for info in [
        SourceRuleInfo("SL100", "syntax-error", Severity.ERROR,
                       "the file does not parse; fix the syntax error first"),
        SourceRuleInfo("SL101", "stdlib-random-banned", Severity.ERROR,
                       "use the counter-based repro.core.prng draws, or "
                       "repro.utils.rng.seeded_rng for numpy sampling"),
        SourceRuleInfo("SL102", "unseeded-default-rng", Severity.ERROR,
                       "pass an explicit integer seed; unseeded generators "
                       "pull OS entropy and break run-to-run reproducibility"),
        SourceRuleInfo("SL103", "inline-default-rng", Severity.ERROR,
                       "construct generators via repro.utils.rng.seeded_rng "
                       "so every seeding site is centrally auditable"),
        SourceRuleInfo("SL104", "wall-clock-in-tick-path", Severity.ERROR,
                       "tick-path code must be a pure function of (network, "
                       "seed, inputs); hoist timing to the caller or mark a "
                       "profile-gated hook with '# repro-lint: allow=SL104'"),
        SourceRuleInfo("SL105", "shm-create-without-cleanup", Severity.ERROR,
                       "pair every SharedMemory(create=True) with .close() "
                       "and .unlink() in the same class to avoid leaking "
                       "segments across runs; reassign buffer-view "
                       "attributes at release time so no buffer export "
                       "outlives the segment"),
        SourceRuleInfo("SL106", "float-in-integer-kernel", Severity.ERROR,
                       "the membrane datapath is integer-exact; keep float "
                       "literals out of kernel arithmetic"),
    ]
}

#: Modules (repo-relative to the ``repro`` package) where even seeded
#: ``default_rng`` construction is allowed — the helper's own home.
DEFAULT_RNG_ALLOW = {"utils/rng.py"}

#: Package sub-trees whose modules are tick paths (SL104 applies).
TICK_PATH_PREFIXES = ("core/", "compass/")

#: Integer-kernel modules (SL106 applies).
INT_KERNEL_MODULES = {
    "core/kernel.py",
    "core/prng.py",
    "compass/fast.py",
    "compass/batched.py",
}

#: Wall-clock callables banned in tick paths.
_WALL_CLOCK = {
    "time.time", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
}
_WALL_CLOCK_BARE = {name.split(".")[-1] for name in _WALL_CLOCK}

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow=([A-Z0-9, ]+)")

_ARITH_OPS = (ast.BinOp, ast.AugAssign, ast.Compare)


def module_rel_path(path: str | Path) -> str:
    """Path of *path* relative to the ``repro`` package root.

    Files outside the package (tools, tests) return their name; rules
    scoped to package sub-trees simply never match them.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return Path(path).name


def _dotted(node: ast.AST) -> str | None:
    """Dotted name of an attribute/name chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _SourceVisitor(ast.NodeVisitor):
    """Single-pass collector for all SL rules over one module."""

    def __init__(self, rel_path: str) -> None:
        self.rel = rel_path
        self.findings: list[tuple[str, str, int]] = []  # (code, message, line)
        self.in_tick_path = rel_path.startswith(TICK_PATH_PREFIXES)
        self.in_int_kernel = rel_path in INT_KERNEL_MODULES
        self.rng_allowed = rel_path in DEFAULT_RNG_ALLOW
        self._time_imports: set[str] = set()  # names bound from `from time import ...`

    def _add(self, code: str, message: str, line: int) -> None:
        self.findings.append((code, message, line))

    # -- SL101: stdlib random ---------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._add("SL101", "import of the stdlib 'random' module", node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._add("SL101", "import from the stdlib 'random' module", node.lineno)
        if node.module == "time":
            self._time_imports.update(alias.asname or alias.name for alias in node.names)
        self.generic_visit(node)

    # -- SL102/SL103/SL104: calls -----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        leaf = dotted.split(".")[-1] if dotted else None

        if leaf == "default_rng":
            unseeded = (not node.args and not node.keywords) or (
                len(node.args) == 1 and _is_none(node.args[0])
            )
            if unseeded:
                self._add("SL102", "np.random.default_rng() without an explicit seed",
                          node.lineno)
            elif not self.rng_allowed:
                self._add("SL103",
                          "direct np.random.default_rng(...) call outside "
                          "repro.utils.rng", node.lineno)

        if self.in_tick_path and dotted:
            bare_clock = dotted in self._time_imports and dotted in _WALL_CLOCK_BARE
            if dotted in _WALL_CLOCK or bare_clock:
                self._add("SL104", f"wall-clock call {dotted}() in a tick-path module",
                          node.lineno)

        self.generic_visit(node)

    # -- SL105: shared-memory lifecycle -----------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        creates: list[int] = []
        closed = unlinked = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func) or ""
                if dotted.split(".")[-1] == "SharedMemory" and any(
                    kw.arg == "create" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in sub.keywords
                ):
                    creates.append(sub.lineno)
                if isinstance(sub.func, ast.Attribute):
                    if sub.func.attr == "close":
                        closed = True
                    if sub.func.attr == "unlink":
                        unlinked = True
        if creates and not (closed and unlinked):
            missing = " and ".join(
                name for name, seen in (("close()", closed), ("unlink()", unlinked))
                if not seen
            )
            self._add("SL105",
                      f"class {node.name} creates shared memory but never "
                      f"calls {missing}", creates[0])
        self._check_buffer_views(node)
        self.generic_visit(node)

    def _check_buffer_views(self, node: ast.ClassDef) -> None:
        """SL105, view half: held ``buffer=`` views need a release path.

        A class that stows an ``np.ndarray(..., buffer=...)`` view in an
        attribute (directly, or by appending a view-holding local to an
        attribute list) keeps a live export of the underlying buffer; if
        no method ever *reassigns* that attribute, the export outlives
        the segment and ``SharedMemory.close()`` raises ``BufferError``.
        View-ness propagates through wrapper calls taking a view local
        as a positional argument (``shadow_view(ring, ...)``).
        """
        assigns = [sub for sub in ast.walk(node) if isinstance(sub, ast.Assign)]
        view_locals: set[str] = set()

        def _is_view_expr(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Call):
                if any(kw.arg == "buffer" for kw in expr.keywords):
                    return True
                return any(
                    isinstance(arg, ast.Name) and arg.id in view_locals
                    for arg in expr.args
                )
            return isinstance(expr, ast.Name) and expr.id in view_locals

        changed = True
        while changed:
            changed = False
            for assign in assigns:
                if not _is_view_expr(assign.value):
                    continue
                for target in assign.targets:
                    if isinstance(target, ast.Name) and target.id not in view_locals:
                        view_locals.add(target.id)
                        changed = True

        view_attrs: dict[str, int] = {}  # attr -> first holding line
        rebound_attrs: set[str] = set()
        for assign in assigns:
            holds_view = _is_view_expr(assign.value)
            for target in assign.targets:
                elts = target.elts if isinstance(target, ast.Tuple) else [target]
                for elt in elts:
                    if not (
                        isinstance(elt, ast.Attribute)
                        and isinstance(elt.value, ast.Name)
                        and elt.value.id == "self"
                    ):
                        continue
                    if holds_view and not isinstance(target, ast.Tuple):
                        view_attrs.setdefault(elt.attr, assign.lineno)
                    else:
                        rebound_attrs.add(elt.attr)
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "append"
            ):
                continue
            holder = sub.func.value
            if (
                isinstance(holder, ast.Attribute)
                and isinstance(holder.value, ast.Name)
                and holder.value.id == "self"
                and any(
                    isinstance(arg, ast.Name) and arg.id in view_locals
                    for arg in sub.args
                )
            ):
                view_attrs.setdefault(holder.attr, sub.lineno)

        for attr, line in sorted(view_attrs.items(), key=lambda kv: kv[1]):
            if attr not in rebound_attrs:
                self._add("SL105",
                          f"class {node.name} holds buffer view "
                          f"self.{attr} but never reassigns it; add a "
                          f"release path dropping the view before the "
                          f"segment closes", line)

    # -- SL106: float literals in integer-kernel arithmetic ----------------
    def _check_float_operands(self, *operands: ast.AST) -> None:
        for op in operands:
            if isinstance(op, ast.UnaryOp):
                op = op.operand
            if isinstance(op, ast.Constant) and isinstance(op.value, float):
                self._add("SL106",
                          f"float literal {op.value!r} in integer-kernel "
                          f"arithmetic", op.lineno)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.in_int_kernel:
            self._check_float_operands(node.left, node.right)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.in_int_kernel:
            self._check_float_operands(node.value)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.in_int_kernel:
            self._check_float_operands(node.left, *node.comparators)
        self.generic_visit(node)


def _allowed_codes(line_text: str) -> set[str]:
    """Codes suppressed by a ``# repro-lint: allow=...`` pragma on a line."""
    match = _PRAGMA.search(line_text)
    if not match:
        return set()
    return {code.strip() for code in match.group(1).split(",") if code.strip()}


def lint_source_text(text: str, path: str | Path) -> Iterator[Diagnostic]:
    """Lint one module's source *text*; *path* scopes path-based rules."""
    rel = module_rel_path(path)
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        yield Diagnostic(
            code="SL100", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
            location=Location(path=str(path), line=exc.lineno or 0),
        )
        return
    visitor = _SourceVisitor(rel)
    visitor.visit(tree)
    lines = text.splitlines()
    for code, message, line in sorted(visitor.findings, key=lambda f: (f[2], f[0])):
        line_text = lines[line - 1] if 0 < line <= len(lines) else ""
        if code in _allowed_codes(line_text):
            continue
        info = SOURCE_CODES[code]
        yield Diagnostic(
            code=code, severity=info.severity, message=message,
            location=Location(path=str(path), line=line), hint=info.hint,
        )


def lint_file(path: str | Path) -> list[Diagnostic]:
    """Lint one source file."""
    text = Path(path).read_text(encoding="utf-8")
    return list(lint_source_text(text, path))


def lint_paths(paths) -> LintReport:
    """Lint files and directories (recursing into ``*.py``)."""
    report = LintReport(subject="source")
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            report.extend(lint_file(file))
    return report
