"""Model-checker rules: the TrueNorth architectural invariants as code.

Each rule inspects one aspect of a :class:`~repro.core.network.Network`
against the hard limits of the architecture (:mod:`repro.core.params`)
and yields :class:`~repro.lint.diagnostics.Diagnostic` findings with
stable ``TN###`` codes.  The code space is organised by family:

* ``TN0xx`` — structural: array shapes, dtypes, emptiness;
* ``TN1xx`` — per-core value ranges (9-bit weights, delays 1-15, ...);
* ``TN2xx`` — routing: inter-core spike targets;
* ``TN3xx`` — dynamics: worst-case interval analysis of the 20-bit
  saturating membrane;
* ``TN4xx`` — determinism: counter-based PRNG coordinate uniqueness;
* ``TN5xx`` — partitioning: rank maps over the compiled network;
* ``TN7xx`` — performance advisories: activity-gating effectiveness.

Rules never raise on bad input — they report.  Orchestration (which
rules run, and when findings become a :class:`LintError`) lives in
:mod:`repro.lint.model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core import params
from repro.lint.diagnostics import Diagnostic, Location, Severity

# Import late-bound to avoid a cycle: core.network imports
# utils.validation; the lint entry points import this module lazily.
OUTPUT_TARGET = -1  # mirrors repro.core.network.OUTPUT_TARGET


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    severity: Severity
    hint: str


#: Every diagnostic code the model checker can emit, with its default
#: severity and fix hint.  ``docs/lint.md`` and ``repro lint --codes``
#: render this table; tests assert every entry has a firing fixture.
CODES: dict[str, RuleInfo] = {
    info.code: info
    for info in [
        RuleInfo("TN001", "array-shape-mismatch", Severity.ERROR,
                 "rebuild the core with Core.build(), which broadcasts "
                 "scalars to the correct per-neuron/per-axon shapes"),
        RuleInfo("TN002", "non-integer-dtype", Severity.ERROR,
                 "cast the array to an integer or bool dtype; the kernel "
                 "is integer-exact and float state breaks bit-identity"),
        RuleInfo("TN003", "empty-network-or-core", Severity.ERROR,
                 "a network needs >= 1 core and a core >= 1 axon and neuron"),
        RuleInfo("TN100", "value-out-of-range", Severity.ERROR,
                 "a generic bounded parameter left its documented interval; "
                 "see the message for the offending field and bounds"),
        RuleInfo("TN101", "weight-out-of-9bit-range", Severity.ERROR,
                 f"clamp synaptic weights to [{params.WEIGHT_MIN}, "
                 f"{params.WEIGHT_MAX}] (signed 9-bit)"),
        RuleInfo("TN102", "delay-out-of-range", Severity.ERROR,
                 f"axonal delays must lie in [{params.MIN_DELAY}, "
                 f"{params.MAX_DELAY}] ticks"),
        RuleInfo("TN103", "axon-type-out-of-range", Severity.ERROR,
                 f"axon types select one of {params.NUM_AXON_TYPES} weight "
                 f"columns; use values in [0, {params.NUM_AXON_TYPES - 1}]"),
        RuleInfo("TN104", "threshold-out-of-range", Severity.ERROR,
                 f"positive thresholds are capped at {params.THRESHOLD_MAX}"),
        RuleInfo("TN105", "threshold-mask-out-of-range", Severity.ERROR,
                 f"stochastic threshold masks use at most 17 bits "
                 f"(max {params.THRESHOLD_MASK_MAX})"),
        RuleInfo("TN106", "neg-threshold-out-of-range", Severity.ERROR,
                 f"negative thresholds beta must lie in "
                 f"[0, {-params.MEMBRANE_MIN}]"),
        RuleInfo("TN107", "leak-out-of-range", Severity.ERROR,
                 f"leak values must lie in [{params.LEAK_MIN}, "
                 f"{params.LEAK_MAX}]"),
        RuleInfo("TN108", "membrane-value-out-of-range", Severity.ERROR,
                 f"reset and initial membrane values must fit the signed "
                 f"20-bit range [{params.MEMBRANE_MIN}, {params.MEMBRANE_MAX}]"),
        RuleInfo("TN109", "invalid-mode-flag", Severity.ERROR,
                 "reset_mode must be one of RESET_TO_VALUE/RESET_LINEAR/"
                 "RESET_NONE and neg_floor_mode one of NEG_FLOOR_SATURATE/"
                 "NEG_FLOOR_RESET"),
        RuleInfo("TN110", "oversize-core", Severity.WARNING,
                 f"a physical TrueNorth core is {params.CORE_AXONS}x"
                 f"{params.CORE_NEURONS}; larger cores simulate but cannot "
                 "map to silicon"),
        RuleInfo("TN201", "dangling-axon-target", Severity.ERROR,
                 "route the neuron to an existing core index or mark it as "
                 "a network output (target_core = -1)"),
        RuleInfo("TN202", "route-off-mesh", Severity.ERROR,
                 "the destination core has no such axon; pick a target_axon "
                 "within the destination core's axon count"),
        RuleInfo("TN301", "potential-20bit-membrane-overflow", Severity.WARNING,
                 "worst-case per-tick synaptic sum plus leak can push the "
                 "membrane past the saturating 20-bit range; lower weights/"
                 "fan-in, raise the threshold, or add decay so saturation "
                 "cannot silently alter spike timing"),
        RuleInfo("TN401", "duplicate-PRNG-coordinate", Severity.ERROR,
                 "two stochastic crosspoints share one counter-based PRNG "
                 "unit (axon*256 + neuron collides when a core exceeds 256 "
                 "neurons); keep stochastic cores within 256 neurons"),
        RuleInfo("TN501", "partition-coverage-gap", Severity.ERROR,
                 "rank_of_core must assign every core exactly one rank in "
                 "[0, n_ranks); empty ranks are reported as warnings"),
        RuleInfo("TN502", "empty-partition-rank", Severity.WARNING,
                 "a rank owns no cores; it will idle at every tick barrier "
                 "— reduce n_ranks or rebalance the partition strategy"),
        RuleInfo("TN601", "model-file-format", Severity.ERROR,
                 "the .npz is not a repro model file (or uses an "
                 "unsupported format version); re-save it with "
                 "repro.io.model_files.save_network"),
        RuleInfo("TN701", "fully-always-active-network", Severity.WARNING,
                 "every neuron is always-active (nonzero or stochastic "
                 "leak, or a stochastic threshold), so the activity-gated "
                 "tick path cannot skip any work; zero out leaks on "
                 "event-driven neurons, or force gated=False to avoid "
                 "paying the gate's bookkeeping"),
    ]
}


def _diag(code: str, message: str, location: Location | None = None,
          severity: Severity | None = None) -> Diagnostic:
    """Build a Diagnostic for *code* using the registry defaults."""
    info = CODES[code]
    return Diagnostic(
        code=code,
        severity=info.severity if severity is None else severity,
        message=message,
        location=location or Location(),
        hint=info.hint,
    )


def _first_bad(mask: np.ndarray) -> int:
    """Index of the first True entry of a boolean mask."""
    return int(np.nonzero(mask)[0][0]) if mask.ndim == 1 else int(np.nonzero(mask.any(axis=-1))[0][0])


# --------------------------------------------------------------------------
# TN0xx: structure
# --------------------------------------------------------------------------

#: Expected shape of every Core array field, as a function of (A, N).
_SHAPES = {
    "crossbar": lambda a, n: (a, n),
    "axon_types": lambda a, n: (a,),
    "weights": lambda a, n: (n, params.NUM_AXON_TYPES),
    "stoch_synapse": lambda a, n: (n, params.NUM_AXON_TYPES),
    "leak": lambda a, n: (n,),
    "leak_reversal": lambda a, n: (n,),
    "stoch_leak": lambda a, n: (n,),
    "threshold": lambda a, n: (n,),
    "threshold_mask": lambda a, n: (n,),
    "neg_threshold": lambda a, n: (n,),
    "reset_value": lambda a, n: (n,),
    "reset_mode": lambda a, n: (n,),
    "neg_floor_mode": lambda a, n: (n,),
    "initial_v": lambda a, n: (n,),
    "target_core": lambda a, n: (n,),
    "target_axon": lambda a, n: (n,),
    "delay": lambda a, n: (n,),
}


def check_core_structure(core, core_id: int | None = None) -> Iterator[Diagnostic]:
    """TN001/TN002/TN003: shapes, dtypes, and non-emptiness of one core."""
    loc = Location(core=core_id)
    crossbar = getattr(core, "crossbar", None)
    if not isinstance(crossbar, np.ndarray) or crossbar.ndim != 2:
        yield _diag("TN001", "crossbar must be a 2-D (axons x neurons) array", loc)
        return
    a, n = crossbar.shape
    if a < 1 or n < 1:
        yield _diag("TN003", f"core has {a} axons and {n} neurons; both must be >= 1", loc)
        return
    for name, expect in _SHAPES.items():
        arr = getattr(core, name)
        if not isinstance(arr, np.ndarray):
            yield _diag("TN001", f"{name} must be a numpy array, got {type(arr).__name__}", loc)
            continue
        shape = expect(a, n)
        if arr.shape != shape:
            yield _diag("TN001", f"{name} must have shape {shape}, got {arr.shape}", loc)
            continue
        if arr.dtype.kind not in "iub":
            yield _diag("TN002", f"{name} must have an integer or bool dtype, got {arr.dtype}", loc)


# --------------------------------------------------------------------------
# TN1xx: value ranges
# --------------------------------------------------------------------------

#: (field, code, low, high) for every bounded per-core array.
_RANGES = [
    ("weights", "TN101", params.WEIGHT_MIN, params.WEIGHT_MAX),
    ("delay", "TN102", params.MIN_DELAY, params.MAX_DELAY),
    ("axon_types", "TN103", 0, params.NUM_AXON_TYPES - 1),
    ("threshold", "TN104", 0, params.THRESHOLD_MAX),
    ("threshold_mask", "TN105", 0, params.THRESHOLD_MASK_MAX),
    ("neg_threshold", "TN106", 0, -params.MEMBRANE_MIN),
    ("leak", "TN107", params.LEAK_MIN, params.LEAK_MAX),
    ("reset_value", "TN108", params.MEMBRANE_MIN, params.MEMBRANE_MAX),
    ("initial_v", "TN108", params.MEMBRANE_MIN, params.MEMBRANE_MAX),
    ("reset_mode", "TN109", min(params.RESET_MODES), max(params.RESET_MODES)),
    ("neg_floor_mode", "TN109", min(params.NEG_FLOOR_MODES), max(params.NEG_FLOOR_MODES)),
]


def check_core_ranges(core, core_id: int | None = None) -> Iterator[Diagnostic]:
    """TN101-TN109: every bounded field of one (structurally valid) core."""
    for name, code, low, high in _RANGES:
        arr = getattr(core, name)
        if arr.size == 0:
            continue
        bad = (arr < low) | (arr > high)
        if bad.any():
            unit = _first_bad(bad)
            yield _diag(
                code,
                f"{name} values must lie in [{low}, {high}], got "
                f"[{int(arr.min())}, {int(arr.max())}]",
                Location(core=core_id, unit=unit),
            )


def check_core_geometry(core, core_id: int | None = None) -> Iterator[Diagnostic]:
    """TN110: cores larger than the physical 256x256 fabric."""
    if core.n_axons > params.CORE_AXONS or core.n_neurons > params.CORE_NEURONS:
        yield _diag(
            "TN110",
            f"core is {core.n_axons}x{core.n_neurons} axons x neurons; the "
            f"physical fabric is {params.CORE_AXONS}x{params.CORE_NEURONS}",
            Location(core=core_id),
        )


# --------------------------------------------------------------------------
# TN2xx: routing
# --------------------------------------------------------------------------

def check_network_routing(network) -> Iterator[Diagnostic]:
    """TN201/TN202: every spike target must land on a real (core, axon)."""
    n_cores = network.n_cores
    axon_counts = np.array([c.n_axons for c in network.cores], dtype=np.int64)
    for idx, core in enumerate(network.cores):
        tc = core.target_core
        ta = core.target_axon
        dangling = (tc != OUTPUT_TARGET) & ((tc < 0) | (tc >= n_cores))
        if dangling.any():
            neurons = np.nonzero(dangling)[0]
            yield _diag(
                "TN201",
                f"target_core out of range [0, {n_cores}) for neurons "
                f"{neurons.tolist()[:8]}",
                Location(core=idx, unit=int(neurons[0])),
            )
        routed = (tc != OUTPUT_TARGET) & ~dangling
        if routed.any():
            dest_axons = axon_counts[tc[routed]]
            off = (ta[routed] < 0) | (ta[routed] >= dest_axons)
            if off.any():
                neurons = np.nonzero(routed)[0][off]
                yield _diag(
                    "TN202",
                    f"target_axon exceeds the destination core's axon count "
                    f"for neurons {neurons.tolist()[:8]}",
                    Location(core=idx, unit=int(neurons[0])),
                )


# --------------------------------------------------------------------------
# TN3xx: membrane interval analysis
# --------------------------------------------------------------------------

def _worst_case_gain(core) -> tuple[np.ndarray, np.ndarray]:
    """Per-neuron worst-case single-tick membrane movement (up, net).

    ``up`` is the largest possible within-tick increase: the sum of the
    positive synaptic weights over the neuron's programmed crosspoints
    plus any upward leak contribution.  ``net`` is the best-case *net*
    per-tick drift when every synapse fires (used for the unbounded-climb
    check under RESET_NONE, where a steady negative leak can still drain
    the membrane).
    """
    # Signed weight seen at each crosspoint: W[i, j] = weights[j, G_i].
    signed = core.weights[:, core.axon_types].T  # (A, N)
    active = np.where(core.crossbar, signed, 0)
    pos_sum = np.maximum(active, 0).sum(axis=0)  # (N,)

    lam = core.leak
    # Upward leak: positive leak always climbs; reversal leak climbs
    # whenever the membrane is positive, so its magnitude counts.
    leak_up = np.where(core.leak_reversal | (lam > 0), np.abs(lam), 0)
    # Net drift upper bound: synaptic maximum plus the signed leak
    # (reversal leak is conservatively taken as upward).
    leak_net = np.where(core.leak_reversal, np.abs(lam), lam)
    return pos_sum + leak_up, pos_sum + leak_net


def check_membrane_overflow(network) -> Iterator[Diagnostic]:
    """TN301: worst-case per-tick sum + leak interval analysis.

    Two ways a model can silently hit the 20-bit saturation clamp:

    1. *In-tick overshoot*: a membrane just below its (stochastically
       maximal) threshold receives the worst-case positive synaptic sum
       plus upward leak and exceeds ``MEMBRANE_MAX`` before the
       threshold compare — with linear reset, the clamped excess is
       lost, perturbing spike timing versus ideal arithmetic.
    2. *Unbounded climb*: with ``RESET_NONE`` the membrane is never
       pulled back on spike, so any positive net per-tick drift walks it
       into saturation eventually.
    """
    for idx, core in enumerate(network.cores):
        up, net = _worst_case_gain(core)
        theta_max = core.threshold + core.threshold_mask  # stochastic max

        peak = (theta_max - 1) + up
        overshoot = peak > params.MEMBRANE_MAX
        if overshoot.any():
            unit = _first_bad(overshoot)
            yield _diag(
                "TN301",
                f"worst-case in-tick membrane peak {int(peak[unit])} exceeds "
                f"MEMBRANE_MAX={params.MEMBRANE_MAX} for neurons "
                f"{np.nonzero(overshoot)[0].tolist()[:8]}",
                Location(core=idx, unit=unit),
            )

        climb = (core.reset_mode == params.RESET_NONE) & (net > 0)
        if climb.any():
            unit = _first_bad(climb)
            yield _diag(
                "TN301",
                f"RESET_NONE with positive net per-tick drift (up to "
                f"{int(net[unit])}/tick) will saturate the 20-bit membrane "
                f"for neurons {np.nonzero(climb)[0].tolist()[:8]}",
                Location(core=idx, unit=unit),
            )


# --------------------------------------------------------------------------
# TN4xx: PRNG determinism
# --------------------------------------------------------------------------

def check_prng_coordinates(core, core_id: int | None = None) -> Iterator[Diagnostic]:
    """TN401: stochastic crosspoints must own distinct PRNG units.

    The counter-based generator keys per-synaptic-event draws on
    ``axon * 256 + neuron`` (:func:`repro.core.prng.synapse_unit`); on
    cores wider than 256 neurons two stochastic crosspoints can collide
    on one unit and observe the *same* random stream, breaking the
    independence the stochastic synapse mode assumes.
    """
    if not core.any_stochastic_synapse:
        return
    axons, neurons = np.nonzero(core.crossbar)
    if axons.size == 0:
        return
    g = core.axon_types[axons]
    stoch = core.stoch_synapse[neurons, g]
    units = axons[stoch] * 256 + neurons[stoch]
    if units.size != np.unique(units).size:
        unique, counts = np.unique(units, return_counts=True)
        first = int(unique[counts > 1][0])
        yield _diag(
            "TN401",
            f"{int((counts > 1).sum())} PRNG unit(s) shared by multiple "
            f"stochastic crosspoints (first colliding unit: {first})",
            Location(core=core_id, unit=first),
        )


def check_replica_seeds(seeds, stochastic: bool = True) -> Iterator[Diagnostic]:
    """TN401 (batched form): replica lanes should own distinct seeds.

    The batched engine extends the PRNG coordinate tuple with a
    per-lane seed: lane draws are keyed on (lane seed, purpose, core,
    lane tick, unit).  Two lanes sharing one seed therefore observe
    *identical* stochastic streams — the whole-batch analogue of two
    crosspoints colliding on one unit.  That is sometimes intended
    (replicating one trajectory for throughput), so on a stochastic
    network duplicates are reported at WARNING severity rather than the
    rule's default ERROR; on a deterministic network seeds are inert
    and duplicates are fine.
    """
    if not stochastic:
        return
    seen: dict[int, int] = {}
    for lane, seed in enumerate(seeds):
        first = seen.setdefault(int(seed), lane)
        if first != lane:
            yield _diag(
                "TN401",
                f"replica lanes {first} and {lane} share seed {int(seed)}: "
                f"both lanes observe identical stochastic streams",
                Location(unit=lane),
                severity=Severity.WARNING,
            )


# --------------------------------------------------------------------------
# TN7xx: performance advisories
# --------------------------------------------------------------------------

def check_activity_gating(network) -> Iterator[Diagnostic]:
    """TN701: a network with no passive-stable neurons defeats the gate.

    The sparse engines' activity-gated tick path
    (:class:`repro.compass.fast.ActivityGate`) skips neurons that are
    passive-stable — zero leak, deterministic leak, non-stochastic
    threshold — once their membranes settle.  When *every* neuron is
    always-active, the gate recomputes the full population each tick and
    gating is pure bookkeeping overhead.  Advisory only: fully active
    models are legitimate (the recurrent builtins among them), so this
    rule is not part of the default :func:`repro.lint.lint_network`
    sweep; callers ask for it via
    :func:`repro.lint.check_activity_gating`.
    """
    # Late import: compass.compile's front door calls back into this
    # package at network-validation time.
    from repro.compass.compile import classify_activity

    total = 0
    passive = 0
    for core in network.cores:
        mask = classify_activity(
            core.leak, core.stoch_leak.astype(bool), core.threshold_mask
        )
        total += mask.size
        passive += int(np.count_nonzero(mask))
    if total and passive == 0:
        yield _diag(
            "TN701",
            f"all {total} neurons are always-active (nonzero/stochastic "
            "leak or stochastic threshold); the activity-gated tick path "
            "cannot skip any work on this network",
        )


# --------------------------------------------------------------------------
# TN5xx: partitioning
# --------------------------------------------------------------------------

def check_partition_map(n_cores: int, rank_of_core: np.ndarray,
                        n_ranks: int) -> Iterator[Diagnostic]:
    """TN501/TN502: a rank map must cover every core; empty ranks warn."""
    rank_of_core = np.asarray(rank_of_core)
    if rank_of_core.shape != (n_cores,):
        yield _diag(
            "TN501",
            f"rank_of_core must assign every core exactly once: expected "
            f"shape ({n_cores},), got {rank_of_core.shape}",
        )
        return
    if rank_of_core.size and (
        rank_of_core.dtype.kind not in "iu"
        or (rank_of_core < 0).any()
        or (rank_of_core >= n_ranks).any()
    ):
        bad = np.nonzero((rank_of_core < 0) | (rank_of_core >= n_ranks))[0] \
            if rank_of_core.dtype.kind in "iu" else np.arange(n_cores)
        yield _diag(
            "TN501",
            f"rank assignments must be integers in [0, {n_ranks}); cores "
            f"{bad.tolist()[:8]} are outside",
            Location(core=int(bad[0]) if bad.size else None),
        )
        return
    owned = np.bincount(rank_of_core, minlength=n_ranks)
    for rank in np.nonzero(owned == 0)[0]:
        yield _diag(
            "TN502",
            f"rank {int(rank)} owns no cores ({n_cores} cores over "
            f"{n_ranks} ranks)",
            Location(rank=int(rank)),
        )
