"""Structured diagnostics for the static model checker and source lint.

Every finding the lint subsystem produces — whether from the network
model checker (:mod:`repro.lint.model`), the partition checker, or the
determinism source lint (:mod:`repro.lint.source`) — is a
:class:`Diagnostic`: a stable code (``TN101``, ``SL104``, ...), a
severity, a human message, a :class:`Location` (chip/core/unit for model
findings, path/line for source findings), and a fix hint.  Diagnostics
accumulate in a :class:`LintReport`, which renders to text or JSON and
converts to a :class:`LintError` on demand.

:class:`LintError` subclasses :class:`ValueError` so that every code
path which historically raised ``ValueError`` on a bad model keeps its
contract while now carrying machine-readable diagnostics.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Model diagnostics fill ``core`` (network core index), ``unit`` (a
    neuron or axon index within that core), and optionally ``chip``;
    source diagnostics fill ``path`` and ``line``.  All fields are
    optional so network-level findings can leave everything unset.
    """

    chip: int | None = None
    core: int | None = None
    unit: int | None = None
    rank: int | None = None
    path: str | None = None
    line: int | None = None

    def __str__(self) -> str:
        if self.path is not None:
            return f"{self.path}:{self.line}" if self.line is not None else self.path
        parts = []
        if self.chip is not None:
            parts.append(f"chip {self.chip}")
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        if self.core is not None:
            parts.append(f"core {self.core}")
        if self.unit is not None:
            parts.append(f"unit {self.unit}")
        return ", ".join(parts) if parts else "network"

    def to_dict(self) -> dict:
        """JSON-ready dict with unset fields omitted."""
        return {
            key: value
            for key, value in (
                ("chip", self.chip),
                ("rank", self.rank),
                ("core", self.core),
                ("unit", self.unit),
                ("path", self.path),
                ("line", self.line),
            )
            if value is not None
        }


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with a stable code and a fix hint."""

    code: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: str = ""

    def render(self) -> str:
        """One-line text rendering: ``TN101 error [core 3]: message``."""
        text = f"{self.code} {self.severity} [{self.location}]: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-ready dict."""
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.hint:
            out["hint"] = self.hint
        return out


class LintError(ValueError):
    """A model or source failed lint.

    Subclasses :class:`ValueError` so pre-lint callers that caught
    ``ValueError`` from ``validate()`` keep working; carries the full
    list of diagnostics for programmatic use.
    """

    def __init__(self, diagnostics: list[Diagnostic], subject: str = "model"):
        self.diagnostics = list(diagnostics)
        lines = [d.render() for d in self.diagnostics]
        n_err = sum(1 for d in self.diagnostics if d.severity >= Severity.ERROR)
        head = f"{subject} failed lint with {n_err} error(s), " \
               f"{len(self.diagnostics) - n_err} other finding(s):"
        super().__init__("\n".join([head, *lines]))

    @property
    def codes(self) -> list[str]:
        """Diagnostic codes, in report order."""
        return [d.code for d in self.diagnostics]


@dataclass
class LintReport:
    """An accumulated collection of diagnostics for one lint subject."""

    subject: str = "model"
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        """Append many findings."""
        self.diagnostics.extend(diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """Findings at ERROR severity."""
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings at WARNING severity."""
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no finding reaches ERROR severity."""
        return not self.errors

    def clean(self, min_severity: Severity = Severity.WARNING) -> bool:
        """True when no finding is at or above *min_severity*."""
        return not any(d.severity >= min_severity for d in self.diagnostics)

    def codes(self) -> list[str]:
        """Diagnostic codes, in report order."""
        return [d.code for d in self.diagnostics]

    def raise_for(self, min_severity: Severity = Severity.ERROR) -> None:
        """Raise :class:`LintError` if any finding reaches *min_severity*."""
        failing = [d for d in self.diagnostics if d.severity >= min_severity]
        if failing:
            raise LintError(failing, subject=self.subject)

    def render_text(self) -> str:
        """Multi-line human rendering (one line per finding + summary)."""
        if not self.diagnostics:
            return f"{self.subject}: clean"
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} info"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine rendering: a stable JSON document."""
        return json.dumps(
            {
                "subject": self.subject,
                "ok": self.ok,
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )
