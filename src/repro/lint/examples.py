"""Registry of the bundled example/app networks, for lint sweeps.

One place that knows how to build every network the repo ships —
the application pipelines at their documented test scales, the
characterization networks, and a corelet-composition example.  Used by:

* ``python -m repro lint --builtin`` (the CI gate over shipped models);
* the test sweep asserting every bundled builder lints clean under
  ``strict`` (no errors *and* no warnings).

Builders are zero-argument callables returning a
:class:`~repro.core.network.Network`, so registration stays lazy: a
builder only runs when its network is actually linted.
"""

from __future__ import annotations

from typing import Callable

from repro.core.network import Network


def _recurrent_deterministic() -> Network:
    from repro.apps.recurrent import probabilistic_recurrent_network

    return probabilistic_recurrent_network(
        100.0, 16, grid_side=2, neurons_per_core=32
    )


def _recurrent_stochastic() -> Network:
    from repro.apps.recurrent import probabilistic_recurrent_network

    return probabilistic_recurrent_network(
        100.0, 16, grid_side=2, neurons_per_core=32, coupling="balanced"
    )


def _haar() -> Network:
    from repro.apps.haar import build_haar_pipeline

    return build_haar_pipeline(16, 16, 4).compiled.network


def _lbp() -> Network:
    from repro.apps.lbp import build_lbp_pipeline

    return build_lbp_pipeline(8, 8, patch=8).compiled.network


def _saliency() -> Network:
    from repro.apps.saliency import build_saliency_pipeline

    return build_saliency_pipeline(16, 16, 4).compiled.network


def _saccade() -> Network:
    from repro.apps.saccade import build_saccade_pipeline

    return build_saccade_pipeline(8).compiled.network


def _stereo() -> Network:
    from repro.apps.stereo import build_stereo_pipeline

    return build_stereo_pipeline(8).compiled.network


def _optical_flow() -> Network:
    from repro.apps.optical_flow import build_flow_pipeline

    return build_flow_pipeline(8).compiled.network


#: name -> zero-argument builder for every bundled network.
BUILTIN_NETWORKS: dict[str, Callable[[], Network]] = {
    "recurrent-deterministic": _recurrent_deterministic,
    "recurrent-stochastic": _recurrent_stochastic,
    "haar": _haar,
    "lbp": _lbp,
    "saliency": _saliency,
    "saccade": _saccade,
    "stereo": _stereo,
    "optical-flow": _optical_flow,
}


def builtin_networks() -> dict[str, Network]:
    """Build and return every registered bundled network."""
    return {name: build() for name, build in BUILTIN_NETWORKS.items()}
