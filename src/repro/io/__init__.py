"""Input/output: AER spike streams, model files, simulator checkpoints."""

from repro.io.aer import (
    AERStream,
    decode_aer,
    encode_aer,
    read_aer_file,
    record_to_aer,
    schedule_from_aer,
    write_aer_file,
)
from repro.io.checkpoint import (
    Checkpoint,
    EngineCheckpoint,
    load_checkpoint,
    model_digest,
    restore_simulator,
    snapshot_simulator,
)
from repro.io.graph_json import (
    composition_graph,
    network_graph,
    read_graph_json,
    to_networkx,
    write_graph_json,
)
from repro.io.model_files import load_network, save_network

__all__ = [
    "AERStream",
    "decode_aer",
    "encode_aer",
    "read_aer_file",
    "record_to_aer",
    "schedule_from_aer",
    "write_aer_file",
    "Checkpoint",
    "EngineCheckpoint",
    "load_checkpoint",
    "model_digest",
    "restore_simulator",
    "snapshot_simulator",
    "composition_graph",
    "network_graph",
    "read_graph_json",
    "to_networkx",
    "write_graph_json",
    "load_network",
    "save_network",
]
