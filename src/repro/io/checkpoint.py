"""Engine-agnostic checkpointing: bit-exact snapshot and resume.

Long regressions (the paper's ran up to 100M ticks / 27.7 hours) need
restartability, and the serving runtime needs lane preemption.  Because
every stochastic draw in the kernel is a pure function of (seed,
purpose, core, tick, unit) — counter-based PRNG, no mutable generator
state — the *entire* future of a run is determined by a small state
vector: the tick index, the flat membrane potentials, the in-flight
delivery ring, the not-yet-injected inputs, and the cumulative event
counters.  An :class:`EngineCheckpoint` captures exactly that vector in
engine-neutral coordinates (global neuron / global axon indices, the
delivery ring rotated so row *k* holds the events due at ``tick + k``),
so a checkpoint taken on any engine restores onto any other — fast →
batched lane, parallel → fast — and the resumed run is bit-identical
to an uninterrupted one: same spikes, same membranes, same counters.

On disk a checkpoint is a versioned ``.npz`` container (mirroring
:mod:`repro.io.model_files`: arrays plus a JSON ``__header__``, no
pickle anywhere) keyed by the source network's :func:`model_digest`.
Restoring validates both the network name and the digest, so a
checkpoint can never be silently replayed into a different model —
mismatches raise :class:`~repro.lint.diagnostics.LintError` with a
``TN602`` diagnostic.  Version-0 pickle blobs from the original
checkpoint layer are detected by magic and rejected loudly (``TN601``).

The legacy :class:`Checkpoint` (per-core membrane/buffer lists for the
reference simulators) remains for the TrueNorth/Compass reference
expressions, now carried in the same container format.
"""

from __future__ import annotations

import copy
import hashlib
import io
import json
import os
from dataclasses import dataclass, field, fields

import numpy as np

from repro.core import params
from repro.core.counters import EventCounters
from repro.lint.diagnostics import Diagnostic, LintError, Severity
from repro.utils.validation import require

#: Container format version.  "Version 0" retroactively names the
#: original unversioned pickle blob, which is rejected with TN601.
CHECKPOINT_FORMAT_VERSION = 1

#: The scalar EventCounters fields, in serialization order.
_COUNTER_SCALARS = (
    "ticks",
    "synaptic_events",
    "spikes",
    "deliveries",
    "neuron_updates",
    "active_neuron_updates",
    "hops",
    "messages",
    "membrane_saturations",
    "max_core_events_per_tick",
)

#: Leading byte of every pickle protocol >= 2 frame (the v0 format).
_PICKLE_MAGIC = b"\x80"


def model_digest(network) -> str:
    """Content hash of a network's dynamics: cores + seed, order exact.

    Two networks with equal digests produce identical compiled
    artifacts and identical simulations, so the digest is a safe
    compiled-network cache key across distinct model objects and the
    identity a checkpoint is validated against on restore.  Accepts a
    :class:`~repro.core.network.Network` or anything wrapping one under
    a ``.network`` attribute (a ``CompiledNetwork``, an engine).  The
    display name is excluded — it does not affect dynamics.
    """
    inner = getattr(network, "network", None)
    net = network if inner is None else inner
    h = hashlib.sha256()
    h.update(f"seed={net.seed};cores={len(net.cores)};".encode())
    for core in net.cores:
        for f in sorted(fields(core), key=lambda f: f.name):
            arr = np.ascontiguousarray(getattr(core, f.name))
            h.update(f"{f.name}:{arr.dtype.str}:{arr.shape};".encode())
            h.update(arr.tobytes())
    return h.hexdigest()


def cached_model_digest(engine) -> str:
    """:func:`model_digest` of *engine*'s network, memoized on the network.

    An engine's network is frozen once compiled, so the sha-256 walk
    over every core's parameters — tens of milliseconds at paper scale
    — is paid once per model (shared by every engine built over it),
    keeping periodic snapshots on the hot path cheap.
    """
    net = getattr(engine, "network", engine)
    inner = getattr(net, "network", None)
    if inner is not None:  # unwrap a CompiledNetwork
        net = inner
    digest = getattr(net, "_model_digest_cache", None)
    if digest is None:
        digest = model_digest(net)
        net._model_digest_cache = digest
    return digest


def _format_error(message: str) -> LintError:
    """A TN601 checkpoint-container-format failure as a LintError."""
    return LintError(
        [Diagnostic(
            code="TN601", severity=Severity.ERROR, message=message,
            hint="re-create the checkpoint with snapshot()/EngineCheckpoint.save",
        )],
        subject="checkpoint file",
    )


def _identity_error(message: str) -> LintError:
    """A TN602 checkpoint/network identity mismatch as a LintError."""
    return LintError(
        [Diagnostic(
            code="TN602", severity=Severity.ERROR, message=message,
            hint="restore a checkpoint only into the network it was taken "
                 "from (matching name and model digest)",
        )],
        subject="checkpoint",
    )


def check_identity(network_name: str, digest: str, network) -> None:
    """Raise TN602 unless *network* matches the checkpoint identity."""
    inner = getattr(network, "network", None)
    net = network if inner is None else inner
    if (network_name or "") != (net.name or ""):
        raise _identity_error(
            f"checkpoint was taken from network {network_name!r}, "
            f"refusing to restore into {net.name!r}"
        )
    if digest:
        actual = model_digest(net)
        if actual != digest:
            raise _identity_error(
                f"model digest mismatch: checkpoint {digest[:12]}… vs "
                f"network {actual[:12]}… — same name, different dynamics"
            )


# -- delivery-ring canonicalization -----------------------------------------

def canonical_ring(raw: np.ndarray, tick: int) -> np.ndarray:
    """Rotate an engine delivery ring into canonical slot order.

    Engines index their ring by absolute tick (``tick % DELAY_SLOTS``);
    the canonical form is engine-neutral: row *k* holds the events due
    at ``tick + k``.  Returns a copy.
    """
    return np.roll(raw, -(int(tick) % params.DELAY_SLOTS), axis=0)


def engine_ring(canonical: np.ndarray, tick: int) -> np.ndarray:
    """Invert :func:`canonical_ring` back to absolute-tick slot order."""
    return np.roll(canonical, int(tick) % params.DELAY_SLOTS, axis=0)


def copy_pending(pending: dict) -> dict:
    """Deep-copy a ``{tick: global-axon array}`` staging map.

    Staged arrays may be shared read-only views (the fast engine's
    input cache), so every value is materialized as a fresh int64 array.
    """
    return {
        int(tick): np.array(axons, dtype=np.int64, copy=True)
        for tick, axons in pending.items()
    }


# -- counter (de)serialization ----------------------------------------------

def _counters_to_header(counters: EventCounters) -> dict:
    return {name: int(getattr(counters, name)) for name in _COUNTER_SCALARS}


def _counters_from_header(doc: dict, per_core: np.ndarray) -> EventCounters:
    counters = EventCounters(
        **{name: int(doc.get(name, 0)) for name in _COUNTER_SCALARS}
    )
    counters.synaptic_events_per_core = np.asarray(per_core, dtype=np.int64).copy()
    return counters


def _pack_pending(pending: dict) -> dict[str, np.ndarray]:
    """Flatten a ``{tick: axon array}`` map into three flat arrays."""
    ticks = sorted(int(t) for t in pending)
    offsets = np.zeros(len(ticks) + 1, dtype=np.int64)
    chunks = []
    for i, t in enumerate(ticks):
        arr = np.asarray(pending[t], dtype=np.int64).ravel()
        offsets[i + 1] = offsets[i] + arr.size
        chunks.append(arr)
    flat = (np.concatenate(chunks) if chunks
            else np.zeros(0, dtype=np.int64))
    return {
        "pending_ticks": np.asarray(ticks, dtype=np.int64),
        "pending_offsets": offsets,
        "pending_axons": flat,
    }


def _unpack_pending(data) -> dict[int, np.ndarray]:
    ticks = np.asarray(data["pending_ticks"], dtype=np.int64)
    offsets = np.asarray(data["pending_offsets"], dtype=np.int64)
    flat = np.asarray(data["pending_axons"], dtype=np.int64)
    return {
        int(t): flat[offsets[i]:offsets[i + 1]].copy()
        for i, t in enumerate(ticks)
    }


def _load_container(data, expected_kind: str) -> dict:
    """Validate a loaded npz's header; return the parsed header dict."""
    if "__header__" not in data:
        raise _format_error("not a repro checkpoint file (missing header)")
    header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
    version = header.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise _format_error(
            f"unsupported checkpoint format version {version} "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    kind = header.get("kind")
    if kind != expected_kind:
        raise _format_error(
            f"checkpoint kind {kind!r} does not match expected "
            f"{expected_kind!r}"
        )
    return header


def _reject_pickle(head: bytes, where: str) -> None:
    if head[:1] == _PICKLE_MAGIC:
        raise _format_error(
            f"{where} is a version-0 pickle checkpoint; the pickle "
            "format is unversioned and unsafe and is no longer read"
        )


def _open_npz(blob: bytes, where: str):
    _reject_pickle(blob, where)
    try:
        return np.load(io.BytesIO(blob), allow_pickle=False)
    except (ValueError, OSError) as err:
        raise _format_error(f"{where} is not a checkpoint container: {err}") from err


# -- the engine-agnostic checkpoint -----------------------------------------

@dataclass
class EngineCheckpoint:
    """One engine's (or one batch lane's) complete dynamic state.

    Everything is in *global* coordinates, independent of the engine
    that produced it: ``v`` is the flat membrane vector in compiled
    neuron order, ``ring`` the delivery buffer in canonical slot order
    (row *k* = events due at ``tick + k``) over global axon indices,
    ``pending`` the not-yet-injected input staging keyed by absolute
    tick, and ``counters`` the cumulative event tallies.  ``seed`` is
    the PRNG stream seed governing draws from ``tick`` onwards (the
    network seed for standalone runs, the per-session derived seed for
    a batch lane).
    """

    network_name: str
    model_digest: str
    seed: int
    tick: int
    v: np.ndarray
    ring: np.ndarray
    pending: dict[int, np.ndarray]
    counters: EventCounters = field(default_factory=EventCounters)

    def validate_against(self, network) -> None:
        """Raise ``TN602`` unless *network* is the checkpoint's model."""
        check_identity(self.network_name, self.model_digest, network)

    def copy(self) -> "EngineCheckpoint":
        """An independent deep copy."""
        return EngineCheckpoint(
            network_name=self.network_name,
            model_digest=self.model_digest,
            seed=int(self.seed),
            tick=int(self.tick),
            v=np.array(self.v, dtype=np.int64, copy=True),
            ring=np.array(self.ring, dtype=bool, copy=True),
            pending=copy_pending(self.pending),
            counters=self.counters.copy(),
        )

    # -- serialization ------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the versioned npz container (no pickle).

        The delivery ring is bit-packed (one bit per axon-slot) and the
        container is written uncompressed: periodic checkpointing sits
        on the engine hot path, and at paper scale the zlib pass costs
        more wall time than the whole snapshot it would shrink.
        """
        ring = np.asarray(self.ring, dtype=bool)
        header = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": "engine",
            "network_name": self.network_name,
            "model_digest": self.model_digest,
            "seed": int(self.seed),
            "tick": int(self.tick),
            "n_axons": int(ring.shape[1]) if ring.ndim == 2 else 0,
            "counters": _counters_to_header(self.counters),
        }
        arrays = {
            "v": np.asarray(self.v, dtype=np.int64),
            "ring_packed": np.packbits(ring, axis=1),
            "counters_per_core": np.asarray(
                self.counters.synaptic_events_per_core, dtype=np.int64
            ),
            **_pack_pending(self.pending),
        }
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    @staticmethod
    def from_bytes(blob: bytes) -> "EngineCheckpoint":
        """Deserialize; rejects v0 pickle blobs and foreign files loudly."""
        with _open_npz(blob, "checkpoint data") as data:
            header = _load_container(data, "engine")
            n_axons = int(header.get("n_axons", 0))
            ring = np.unpackbits(
                np.asarray(data["ring_packed"], dtype=np.uint8),
                axis=1, count=n_axons,
            ).astype(bool)
            return EngineCheckpoint(
                network_name=header.get("network_name", ""),
                model_digest=header.get("model_digest", ""),
                seed=int(header.get("seed", 0)),
                tick=int(header["tick"]),
                v=np.asarray(data["v"], dtype=np.int64).copy(),
                ring=ring,
                pending=_unpack_pending(data),
                counters=_counters_from_header(
                    header.get("counters", {}), data["counters_per_core"]
                ),
            )

    def save(self, path) -> int:
        """Write the container to *path*; return the byte count."""
        blob = self.to_bytes()
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "wb") as f:
            f.write(blob)
        return len(blob)

    @staticmethod
    def load(path, network=None) -> "EngineCheckpoint":
        """Read a container from *path*, validating against *network*.

        With *network* given (a Network or CompiledNetwork), the
        checkpoint's name + model digest are checked before it is
        returned — the loud guard against restoring into the wrong
        model.
        """
        with open(path, "rb") as f:
            blob = f.read()
        ckpt = EngineCheckpoint.from_bytes(blob)
        if network is not None:
            ckpt.validate_against(network)
        return ckpt

    def describe(self) -> dict:
        """Inspection summary (the ``repro checkpoint inspect`` view)."""
        return {
            "kind": "engine",
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "network_name": self.network_name,
            "model_digest": self.model_digest,
            "seed": int(self.seed),
            "tick": int(self.tick),
            "n_neurons": int(self.v.size),
            "n_axons": int(self.ring.shape[1]) if self.ring.ndim == 2 else 0,
            "delay_slots": int(self.ring.shape[0]) if self.ring.ndim == 2 else 0,
            "in_flight_events": int(np.count_nonzero(self.ring)),
            "pending_input_ticks": len(self.pending),
            "counters": _counters_to_header(self.counters),
        }


# -- the legacy per-core checkpoint (reference simulators) ------------------

@dataclass
class Checkpoint:
    """Snapshot of a reference simulator's dynamic state (per-core lists)."""

    tick: int
    membranes: list
    axon_buffers: list
    pending_inputs: dict
    network_name: str
    n_cores: int
    model_digest: str = ""
    counters: EventCounters | None = None

    def to_bytes(self) -> bytes:
        """Serialize to the versioned npz container (no pickle)."""
        pending_ticks = sorted(int(t) for t in self.pending_inputs)
        pairs = []
        offsets = np.zeros(len(pending_ticks) + 1, dtype=np.int64)
        for i, t in enumerate(pending_ticks):
            events = [(int(c), int(a)) for c, a in self.pending_inputs[t]]
            offsets[i + 1] = offsets[i] + len(events)
            pairs.extend(events)
        counters = self.counters if self.counters is not None else EventCounters()
        header = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": "legacy",
            "network_name": self.network_name,
            "model_digest": self.model_digest,
            "n_cores": int(self.n_cores),
            "tick": int(self.tick),
            "has_counters": self.counters is not None,
            "counters": _counters_to_header(counters),
        }
        arrays: dict[str, np.ndarray] = {
            "pending_ticks": np.asarray(pending_ticks, dtype=np.int64),
            "pending_offsets": offsets,
            "pending_pairs": (
                np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
            ),
            "counters_per_core": np.asarray(
                counters.synaptic_events_per_core, dtype=np.int64
            ),
        }
        for i, mem in enumerate(self.membranes):
            arrays[f"mem{i}"] = np.asarray(mem, dtype=np.int64)
        for i, buf in enumerate(self.axon_buffers):
            arrays[f"buf{i}"] = np.asarray(buf, dtype=bool)
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        return buf.getvalue()

    @staticmethod
    def from_bytes(blob: bytes) -> "Checkpoint":
        """Deserialize; rejects v0 pickle blobs loudly."""
        with _open_npz(blob, "checkpoint data") as data:
            header = _load_container(data, "legacy")
            n_cores = int(header["n_cores"])
            ticks = np.asarray(data["pending_ticks"], dtype=np.int64)
            offsets = np.asarray(data["pending_offsets"], dtype=np.int64)
            pairs = np.asarray(data["pending_pairs"], dtype=np.int64)
            pending = {
                int(t): [
                    (int(c), int(a))
                    for c, a in pairs[offsets[i]:offsets[i + 1]]
                ]
                for i, t in enumerate(ticks)
            }
            counters = None
            if header.get("has_counters"):
                counters = _counters_from_header(
                    header.get("counters", {}), data["counters_per_core"]
                )
            return Checkpoint(
                tick=int(header["tick"]),
                membranes=[
                    np.asarray(data[f"mem{i}"], dtype=np.int64).copy()
                    for i in range(n_cores)
                ],
                axon_buffers=[
                    np.asarray(data[f"buf{i}"], dtype=bool).copy()
                    for i in range(n_cores)
                ],
                pending_inputs=pending,
                network_name=header.get("network_name", ""),
                n_cores=n_cores,
                model_digest=header.get("model_digest", ""),
                counters=counters,
            )

    def save(self, path) -> int:
        """Write the container to *path*; return the byte count."""
        blob = self.to_bytes()
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "wb") as f:
            f.write(blob)
        return len(blob)

    def describe(self) -> dict:
        """Inspection summary (the ``repro checkpoint inspect`` view)."""
        counters = self.counters if self.counters is not None else EventCounters()
        return {
            "kind": "legacy",
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "network_name": self.network_name,
            "model_digest": self.model_digest,
            "tick": int(self.tick),
            "n_cores": int(self.n_cores),
            "n_neurons": int(sum(m.size for m in self.membranes)),
            "pending_input_ticks": len(self.pending_inputs),
            "counters": _counters_to_header(counters),
        }


def load_checkpoint(path):
    """Load either checkpoint kind from *path* by its header.

    Returns an :class:`EngineCheckpoint` or a legacy :class:`Checkpoint`
    depending on the container's ``kind`` field; v0 pickle blobs and
    foreign files raise ``TN601``.
    """
    with open(path, "rb") as f:
        blob = f.read()
    _reject_pickle(blob, os.fspath(path))
    with _open_npz(blob, os.fspath(path)) as data:
        if "__header__" not in data:
            raise _format_error("not a repro checkpoint file (missing header)")
        header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
    kind = header.get("kind")
    if kind == "engine":
        return EngineCheckpoint.from_bytes(blob)
    if kind == "legacy":
        return Checkpoint.from_bytes(blob)
    raise _format_error(f"unknown checkpoint kind {kind!r}")


# -- reference-simulator snapshot/restore -----------------------------------

def snapshot_simulator(sim) -> Checkpoint:
    """Capture the dynamic state of a Compass or TrueNorth simulator."""
    counters = getattr(sim, "counters", None)
    return Checkpoint(
        tick=sim.tick,
        membranes=[v.copy() for v in sim.membranes],
        axon_buffers=[b.copy() for b in sim.axon_buffers],
        pending_inputs=copy.deepcopy(sim._input_by_tick),
        network_name=sim.network.name,
        n_cores=sim.network.n_cores,
        model_digest=model_digest(sim.network),
        counters=counters.copy() if counters is not None else None,
    )


def restore_simulator(sim, checkpoint: Checkpoint) -> None:
    """Load *checkpoint* into a freshly constructed simulator.

    The simulator must wrap the *same* network the checkpoint was taken
    from: the core count is checked structurally, and the network name
    plus model digest are validated (``TN602`` on mismatch), so a
    checkpoint can no longer be replayed into a different same-shaped
    network to silently produce garbage.
    """
    require(
        sim.network.n_cores == checkpoint.n_cores,
        f"checkpoint is for {checkpoint.n_cores} cores, "
        f"simulator has {sim.network.n_cores}",
    )
    check_identity(
        checkpoint.network_name, checkpoint.model_digest, sim.network
    )
    for current, saved in zip(sim.membranes, checkpoint.membranes):
        require(current.shape == saved.shape, "membrane shape mismatch")
    sim.tick = checkpoint.tick
    sim.membranes = [np.asarray(v).copy() for v in checkpoint.membranes]
    sim.axon_buffers = [np.asarray(b).copy() for b in checkpoint.axon_buffers]
    sim._input_by_tick = copy.deepcopy(checkpoint.pending_inputs)
    if checkpoint.counters is not None:
        sim.counters = checkpoint.counters.copy()
        sim.counters.ensure_cores(sim.network.n_cores)
