"""Simulator checkpointing: snapshot and resume mid-run.

Long regressions (the paper's ran up to 100M ticks / 27.7 hours) need
restartability.  A :class:`Checkpoint` captures everything that defines
future behaviour — tick index, membrane potentials, in-flight axon
events (the 16-slot delay buffers), and not-yet-injected inputs — so a
restored simulator continues *bit-exactly*: the spikes after resume
equal the spikes of an uninterrupted run.  Works for both the Compass
and TrueNorth expressions (they share the state layout by co-design).
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass
class Checkpoint:
    """Snapshot of a simulator's dynamic state."""

    tick: int
    membranes: list
    axon_buffers: list
    pending_inputs: dict
    network_name: str
    n_cores: int

    def to_bytes(self) -> bytes:
        """Serialize for storage (pickle of plain arrays/dicts)."""
        return pickle.dumps(
            {
                "tick": self.tick,
                "membranes": self.membranes,
                "axon_buffers": self.axon_buffers,
                "pending_inputs": self.pending_inputs,
                "network_name": self.network_name,
                "n_cores": self.n_cores,
            }
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Checkpoint":
        """Deserialize a checkpoint."""
        payload = pickle.loads(data)
        return Checkpoint(**payload)


def snapshot_simulator(sim) -> Checkpoint:
    """Capture the dynamic state of a Compass or TrueNorth simulator."""
    return Checkpoint(
        tick=sim.tick,
        membranes=[v.copy() for v in sim.membranes],
        axon_buffers=[b.copy() for b in sim.axon_buffers],
        pending_inputs=copy.deepcopy(sim._input_by_tick),
        network_name=sim.network.name,
        n_cores=sim.network.n_cores,
    )


def restore_simulator(sim, checkpoint: Checkpoint) -> None:
    """Load *checkpoint* into a freshly constructed simulator.

    The simulator must wrap the same network the checkpoint was taken
    from (same core count; the network configuration itself is immutable
    and stored separately via :mod:`repro.io.model_files`).
    """
    require(
        sim.network.n_cores == checkpoint.n_cores,
        f"checkpoint is for {checkpoint.n_cores} cores, "
        f"simulator has {sim.network.n_cores}",
    )
    for current, saved in zip(sim.membranes, checkpoint.membranes):
        require(current.shape == saved.shape, "membrane shape mismatch")
    sim.tick = checkpoint.tick
    sim.membranes = [np.asarray(v).copy() for v in checkpoint.membranes]
    sim.axon_buffers = [np.asarray(b).copy() for b in checkpoint.axon_buffers]
    sim._input_by_tick = copy.deepcopy(checkpoint.pending_inputs)
