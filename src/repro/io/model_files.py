"""Network model files: save/load complete networks to a single .npz.

Compass consumes model files describing every core's configuration; the
same role here.  The format stores each core's arrays under prefixed
keys plus a small JSON header with network metadata, all inside one
NumPy ``.npz`` archive — portable, compressed, and exactly
round-trippable (loading a saved network reproduces identical spikes).
"""

from __future__ import annotations

import json
from dataclasses import fields

import numpy as np

from repro.core.network import Core, Network
from repro.lint.diagnostics import Diagnostic, LintError, Severity

FORMAT_VERSION = 1

_ARRAY_FIELDS = [f.name for f in fields(Core) if f.name != "name"]


def _format_error(message: str) -> LintError:
    """A TN601 model-file-format failure as a LintError."""
    return LintError(
        [Diagnostic(
            code="TN601", severity=Severity.ERROR, message=message,
            hint="re-save the network with repro.io.model_files.save_network",
        )],
        subject="model file",
    )


def save_network(path, network: Network) -> None:
    """Write *network* to a ``.npz`` model file."""
    network.validate()
    arrays: dict[str, np.ndarray] = {}
    header = {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "seed": network.seed,
        "n_cores": network.n_cores,
        "core_names": [core.name for core in network.cores],
    }
    for idx, core in enumerate(network.cores):
        for field_name in _ARRAY_FIELDS:
            arrays[f"core{idx}/{field_name}"] = getattr(core, field_name)
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_network(path, validate: bool = True) -> Network:
    """Load a network from a ``.npz`` model file.

    Malformed files and invalid models both raise
    :class:`~repro.lint.LintError`: format problems as ``TN601``,
    architectural violations through the model checker.  Pass
    ``validate=False`` to load a known-bad model for offline linting
    (``repro lint`` does this so it can report *all* findings instead of
    failing on the first).
    """
    with np.load(path) as data:
        if "__header__" not in data:
            raise _format_error("not a repro model file (missing header)")
        header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise _format_error(
                f"unsupported model-file version {header.get('format_version')}"
            )
        cores = []
        for idx in range(header["n_cores"]):
            kwargs = {
                field_name: data[f"core{idx}/{field_name}"]
                for field_name in _ARRAY_FIELDS
            }
            cores.append(Core(name=header["core_names"][idx], **kwargs))
    network = Network(cores=cores, seed=int(header["seed"]), name=header["name"])
    if validate:
        network.validate()
    return network
