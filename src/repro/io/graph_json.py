"""Corelet-graph JSON export: structural interchange and documentation.

Exports the *structure* of a network — cores as nodes, inter-core
neuron->axon bundles as weighted edges, connector endpoints — as plain
JSON for visualization tools, diffing, and documentation.  The inverse
of the full `.npz` model file: small, human-readable, structure-only
(no crossbar contents or neuron parameters).
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.network import OUTPUT_TARGET, Network
from repro.corelets.corelet import CompiledComposition
from repro.utils.validation import require

GRAPH_FORMAT_VERSION = 1


def network_graph(network: Network) -> dict:
    """Structural graph of a network as a JSON-ready dict."""
    nodes = [
        {
            "id": idx,
            "name": core.name,
            "axons": core.n_axons,
            "neurons": core.n_neurons,
            "synapses": core.n_synapses,
            "outputs": int((core.target_core == OUTPUT_TARGET).sum()),
        }
        for idx, core in enumerate(network.cores)
    ]
    edges: dict = {}
    for src, core in enumerate(network.cores):
        routed = core.target_core != OUTPUT_TARGET
        targets, counts = np.unique(core.target_core[routed], return_counts=True)
        for dst, count in zip(targets.tolist(), counts.tolist()):
            key = (src, int(dst))
            edges[key] = edges.get(key, 0) + int(count)
    return {
        "format_version": GRAPH_FORMAT_VERSION,
        "name": network.name,
        "seed": network.seed,
        "nodes": nodes,
        "edges": [
            {"src": src, "dst": dst, "neurons": count}
            for (src, dst), count in sorted(edges.items())
        ],
    }


def composition_graph(compiled: CompiledComposition) -> dict:
    """Graph of a compiled composition, including exported connectors."""
    graph = network_graph(compiled.network)
    graph["inputs"] = {
        name: [{"core": p.core, "axon": p.index} for p in pins]
        for name, pins in compiled.inputs.items()
    }
    graph["outputs"] = {
        name: [{"core": p.core, "neuron": p.index} for p in pins]
        for name, pins in compiled.outputs.items()
    }
    return graph


def write_graph_json(path, graph: dict) -> None:
    """Write a graph dict to *path* as pretty JSON."""
    with open(path, "w") as f:
        json.dump(graph, f, indent=2, sort_keys=True)


def read_graph_json(path) -> dict:
    """Read a graph JSON file (validating the format version)."""
    with open(path) as f:
        graph = json.load(f)
    require(
        graph.get("format_version") == GRAPH_FORMAT_VERSION,
        f"unsupported graph format {graph.get('format_version')}",
    )
    return graph


def to_networkx(graph: dict):
    """Convert a graph dict to a networkx DiGraph for analysis."""
    import networkx as nx

    g = nx.DiGraph(name=graph.get("name", ""))
    for node in graph["nodes"]:
        g.add_node(node["id"], **node)
    for edge in graph["edges"]:
        g.add_edge(edge["src"], edge["dst"], neurons=edge["neurons"])
    return g
