"""Address-Event Representation (AER) spike streams.

Spike traffic in and out of TrueNorth systems travels as address events:
(timestamp, core, axon-or-neuron) words.  This module defines a compact
binary AER format used to feed recorded sensor data into networks and to
capture network outputs for downstream processing — the spike-level
interchange format between the transduction layer, the simulators, and
file storage.

Word format (16 bytes, little-endian):

    uint64 tick | uint32 core | uint32 line

where ``line`` is an axon index for input streams and a neuron index
for output streams.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.core.inputs import InputSchedule
from repro.core.record import SpikeRecord
from repro.utils.validation import require

_WORD = struct.Struct("<QII")
MAGIC = b"AER1"


@dataclass
class AERStream:
    """An ordered sequence of address events."""

    ticks: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    cores: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    lines: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @staticmethod
    def from_events(events: list[tuple[int, int, int]]) -> "AERStream":
        """Build a stream from (tick, core, line) tuples (sorted)."""
        if not events:
            return AERStream()
        arr = np.asarray(sorted(events), dtype=np.int64)
        return AERStream(ticks=arr[:, 0], cores=arr[:, 1], lines=arr[:, 2])

    @property
    def n_events(self) -> int:
        """Number of events in the stream."""
        return int(self.ticks.size)

    def as_tuples(self) -> list[tuple[int, int, int]]:
        """Events as (tick, core, line) tuples."""
        return list(zip(self.ticks.tolist(), self.cores.tolist(), self.lines.tolist()))

    def shifted(self, dt: int) -> "AERStream":
        """Stream with all timestamps shifted by *dt* ticks."""
        require(self.n_events == 0 or int(self.ticks.min()) + dt >= 0,
                "shift would produce negative ticks")
        return AERStream(ticks=self.ticks + dt, cores=self.cores, lines=self.lines)

    def window(self, start: int, stop: int) -> "AERStream":
        """Events with start <= tick < stop."""
        mask = (self.ticks >= start) & (self.ticks < stop)
        return AERStream(
            ticks=self.ticks[mask], cores=self.cores[mask], lines=self.lines[mask]
        )

    def merge(self, other: "AERStream") -> "AERStream":
        """Timestamp-ordered merge of two streams."""
        return AERStream.from_events(self.as_tuples() + other.as_tuples())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AERStream):
            return NotImplemented
        return (
            np.array_equal(self.ticks, other.ticks)
            and np.array_equal(self.cores, other.cores)
            and np.array_equal(self.lines, other.lines)
        )


def encode_aer(stream: AERStream) -> bytes:
    """Serialize a stream to the binary AER format."""
    out = bytearray(MAGIC)
    out += struct.pack("<Q", stream.n_events)
    for t, c, a in stream.as_tuples():
        require(t >= 0 and c >= 0 and a >= 0, "AER events must be non-negative")
        out += _WORD.pack(t, c, a)
    return bytes(out)


def decode_aer(data: bytes) -> AERStream:
    """Parse binary AER data back into a stream."""
    require(data[:4] == MAGIC, "not an AER1 stream")
    (count,) = struct.unpack_from("<Q", data, 4)
    events = []
    pos = 12
    require(len(data) >= pos + count * _WORD.size, "truncated AER stream")
    for _ in range(count):
        t, c, a = _WORD.unpack_from(data, pos)
        events.append((int(t), int(c), int(a)))
        pos += _WORD.size
    return AERStream.from_events(events)


def write_aer_file(path, stream: AERStream) -> None:
    """Write a stream to *path*."""
    with open(path, "wb") as f:
        f.write(encode_aer(stream))


def read_aer_file(path) -> AERStream:
    """Read a stream from *path*."""
    with open(path, "rb") as f:
        return decode_aer(f.read())


def schedule_from_aer(stream: AERStream) -> InputSchedule:
    """Convert an input AER stream into a simulator input schedule."""
    return InputSchedule.from_events(stream.as_tuples())


def aer_from_schedule(schedule: InputSchedule) -> AERStream:
    """Convert an input schedule into an AER stream."""
    return AERStream.from_events(list(schedule))


def record_to_aer(record: SpikeRecord) -> AERStream:
    """Capture a run's output spikes as an AER stream (line = neuron)."""
    return AERStream(
        ticks=record.ticks.copy(), cores=record.cores.copy(), lines=record.neurons.copy()
    )
