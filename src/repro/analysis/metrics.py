"""Metric definitions used throughout the evaluation (paper Section V).

All ratios follow the paper's conventions:

* ``Speedup = T_proc / T_TrueNorth``
* ``xImprovement_power = P_proc / P_TrueNorth``
* ``xImprovement_energy = E_proc / E_TrueNorth`` (per simulation tick)
* ``SOPS = avg_firing_rate x avg_active_synapses x neurons``
"""

from __future__ import annotations

import math

from repro.core import params
from repro.core.counters import EventCounters


def sops(rate_hz: float, active_synapses: float, n_neurons: int) -> float:
    """Synaptic operations per second at real-time operation."""
    return rate_hz * active_synapses * n_neurons


def gsops(rate_hz: float, active_synapses: float, n_neurons: int) -> float:
    """Giga synaptic operations per second."""
    return sops(rate_hz, active_synapses, n_neurons) / 1e9


def gsops_per_watt(sops_value: float, power_w: float) -> float:
    """Computation per energy in GSOPS/W."""
    if power_w <= 0:
        return 0.0
    return sops_value / power_w / 1e9


def sops_from_counters(counters: EventCounters, tick_frequency_hz: float = params.REAL_TIME_HZ) -> float:
    """Measured SOPS of a simulated run at a given tick frequency."""
    if counters.ticks == 0:
        return 0.0
    return counters.synaptic_events / counters.ticks * tick_frequency_hz


def speedup(t_proc_s: float, t_truenorth_s: float) -> float:
    """Time-to-solution ratio (paper Section VI-C)."""
    return t_proc_s / t_truenorth_s


def power_improvement(p_proc_w: float, p_truenorth_w: float) -> float:
    """Power ratio."""
    return p_proc_w / p_truenorth_w


def energy_improvement(e_proc_j: float, e_truenorth_j: float) -> float:
    """Energy-to-solution ratio."""
    return e_proc_j / e_truenorth_j


def orders_of_magnitude(ratio: float) -> float:
    """log10 of a ratio — the paper reports improvements in orders."""
    if ratio <= 0:
        return float("-inf")
    return math.log10(ratio)


def within_band(value: float, low: float, high: float) -> bool:
    """Band check used by the reproduction assertions."""
    return low <= value <= high
