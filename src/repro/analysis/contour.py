"""Parameter-sweep grids for the Fig. 5/6 contour plots.

A :class:`SweepGrid` holds a 2D array of values over named axes, with
helpers for monotonicity checks (the shape properties the reproduction
asserts) and corner lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass
class SweepGrid:
    """Values of one metric over a 2D parameter sweep."""

    row_name: str
    col_name: str
    rows: np.ndarray  # row-axis values (e.g. firing rates)
    cols: np.ndarray  # column-axis values (e.g. active synapses)
    values: np.ndarray  # (len(rows), len(cols))
    metric: str = ""

    def __post_init__(self) -> None:
        assert self.values.shape == (self.rows.size, self.cols.size)

    def at(self, row_value: float, col_value: float) -> float:
        """Value at the grid point nearest to (row_value, col_value)."""
        ri = int(np.abs(self.rows - row_value).argmin())
        ci = int(np.abs(self.cols - col_value).argmin())
        return float(self.values[ri, ci])

    @property
    def min(self) -> float:
        """Smallest value on the grid."""
        return float(self.values.min())

    @property
    def max(self) -> float:
        """Largest value on the grid."""
        return float(self.values.max())

    def corner(self, row_high: bool, col_high: bool) -> float:
        """Value at one of the four grid corners."""
        return float(self.values[-1 if row_high else 0, -1 if col_high else 0])

    def monotone_rows(self, increasing: bool = True, tol: float = 1e-12) -> bool:
        """True if every column is monotone along the row axis."""
        d = np.diff(self.values, axis=0)
        return bool((d >= -tol).all() if increasing else (d <= tol).all())

    def monotone_cols(self, increasing: bool = True, tol: float = 1e-12) -> bool:
        """True if every row is monotone along the column axis."""
        d = np.diff(self.values, axis=1)
        return bool((d >= -tol).all() if increasing else (d <= tol).all())


def sweep(
    row_name: str,
    rows: np.ndarray,
    col_name: str,
    cols: np.ndarray,
    fn: Callable[[float, float], float],
    metric: str = "",
) -> SweepGrid:
    """Evaluate ``fn(row_value, col_value)`` over the full grid."""
    rows = np.asarray(rows, dtype=np.float64)
    cols = np.asarray(cols, dtype=np.float64)
    values = np.empty((rows.size, cols.size))
    for i, r in enumerate(rows):
        for j, c in enumerate(cols):
            values[i, j] = fn(float(r), float(c))
    return SweepGrid(
        row_name=row_name, col_name=col_name, rows=rows, cols=cols,
        values=values, metric=metric,
    )


def default_rate_axis(n: int = 9) -> np.ndarray:
    """Firing-rate axis 0..200 Hz (Fig. 5 x axes)."""
    return np.linspace(0.0, 200.0, n)


def default_synapse_axis(n: int = 9) -> np.ndarray:
    """Active-synapse axis 0..256 (Fig. 5 y axes)."""
    return np.linspace(0.0, 256.0, n)


def default_voltage_axis(n: int = 8) -> np.ndarray:
    """Supply-voltage axis 0.70..1.05 V (Fig. 5(c,f))."""
    return np.linspace(0.70, 1.05, n)
