"""Plain-text rendering of tables and contour grids.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them for terminals and for EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contour import SweepGrid

_SHADES = " .:-=+*#%@"


def format_value(v: float) -> str:
    """Compact numeric formatting across 10 orders of magnitude."""
    if v == 0:
        return "0"
    a = abs(v)
    if a >= 1e5 or a < 1e-3:
        return f"{v:.2e}"
    if a >= 100:
        return f"{v:.0f}"
    if a >= 1:
        return f"{v:.2f}"
    return f"{v:.4f}"


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [format_value(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(headers: list[str], rows: list[list]) -> str:
    """GitHub-markdown table (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append(
            "| "
            + " | ".join(
                format_value(c) if isinstance(c, float) else str(c) for c in row
            )
            + " |"
        )
    return "\n".join(out)


def render_contour(grid: SweepGrid, log_scale: bool = False, width: int = 2) -> str:
    """ASCII heat map of a sweep grid (rows bottom-up, like the paper)."""
    v = grid.values.astype(np.float64)
    if log_scale:
        with np.errstate(divide="ignore"):
            v = np.log10(np.maximum(v, np.finfo(float).tiny))
    lo, hi = v.min(), v.max()
    span = hi - lo if hi > lo else 1.0
    lines = [f"{grid.metric}  ({grid.row_name} vs {grid.col_name})"]
    for i in reversed(range(grid.rows.size)):
        row_chars = []
        for j in range(grid.cols.size):
            level = int((v[i, j] - lo) / span * (len(_SHADES) - 1))
            row_chars.append(_SHADES[level] * width)
        lines.append(f"{grid.rows[i]:>8.4g} |" + "".join(row_chars))
    lines.append(" " * 9 + "+" + "-" * (grid.cols.size * width))
    lines.append(
        " " * 10
        + "".join(f"{c:<{width}.3g}"[:width] for c in grid.cols)
        + f"   ({grid.col_name})"
    )
    lines.append(f"   range: [{format_value(grid.min)}, {format_value(grid.max)}]")
    return "\n".join(lines)


def render_series(name: str, xs: list, ys: list, x_name: str = "x", y_name: str = "y") -> str:
    """Two-column series rendering for scatter-style figures."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return render_table([x_name, y_name], rows, title=name)
