"""Spike-record comparison: regression-diff tooling.

When two kernel expressions disagree (they should never — Section
VI-A), the first question is *where and how* they diverged.  This
module produces structured divergence reports: the earliest mismatch,
per-core mismatch tallies, and the divergence horizon (ticks until the
records stop resembling each other — chaotic networks diverge
explosively after a single missed event, which is why the paper calls
them "a sensitive assay").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.record import SpikeRecord


@dataclass(frozen=True)
class DivergenceReport:
    """Structured comparison of two spike records."""

    identical: bool
    n_spikes_a: int
    n_spikes_b: int
    first_mismatch: tuple | None  # earliest (tick, core, neuron) in one only
    first_mismatch_tick: int | None
    missing_in_b: int  # spikes in A only
    extra_in_b: int  # spikes in B only
    per_core_mismatches: dict  # core -> mismatch count
    agreement_by_tick: list  # (tick, jaccard) after the first mismatch

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        if self.identical:
            return (
                f"records identical: {self.n_spikes_a} spikes, "
                "not a single spike mismatch"
            )
        lines = [
            f"records DIVERGE: {self.n_spikes_a} vs {self.n_spikes_b} spikes",
            f"  first mismatch at tick {self.first_mismatch_tick}: "
            f"{self.first_mismatch}",
            f"  {self.missing_in_b} spikes missing, {self.extra_in_b} spurious",
            f"  cores affected: {sorted(self.per_core_mismatches)}",
        ]
        return "\n".join(lines)


def compare_records(
    a: SpikeRecord, b: SpikeRecord, horizon_ticks: int = 10
) -> DivergenceReport:
    """Diff two records; *horizon_ticks* bounds the agreement trace."""
    set_a = set(a.as_tuples())
    set_b = set(b.as_tuples())
    if set_a == set_b:
        return DivergenceReport(
            identical=True,
            n_spikes_a=a.n_spikes,
            n_spikes_b=b.n_spikes,
            first_mismatch=None,
            first_mismatch_tick=None,
            missing_in_b=0,
            extra_in_b=0,
            per_core_mismatches={},
            agreement_by_tick=[],
        )

    diff = set_a.symmetric_difference(set_b)
    first = min(diff)
    per_core: dict = {}
    for _, core, _ in diff:
        per_core[core] = per_core.get(core, 0) + 1

    agreement = []
    for dt in range(horizon_ticks):
        tick = first[0] + dt
        at_a = {(c, n) for t, c, n in set_a if t == tick}
        at_b = {(c, n) for t, c, n in set_b if t == tick}
        union = at_a | at_b
        jaccard = len(at_a & at_b) / len(union) if union else 1.0
        agreement.append((tick, jaccard))

    return DivergenceReport(
        identical=False,
        n_spikes_a=a.n_spikes,
        n_spikes_b=b.n_spikes,
        first_mismatch=first,
        first_mismatch_tick=first[0],
        missing_in_b=len(set_a - set_b),
        extra_in_b=len(set_b - set_a),
        per_core_mismatches=per_core,
        agreement_by_tick=agreement,
    )


def divergence_horizon(a: SpikeRecord, b: SpikeRecord, threshold: float = 0.5) -> int | None:
    """Ticks from first mismatch until per-tick agreement falls below
    *threshold* (None when the records agree everywhere).

    Chaotic recurrent networks collapse to near-zero agreement within a
    few ticks of a single perturbed event; feed-forward pipelines decay
    slowly — the two regimes the paper's regression strategy exploits.
    """
    report = compare_records(a, b, horizon_ticks=64)
    if report.identical:
        return None
    for tick, jaccard in report.agreement_by_tick:
        if jaccard < threshold:
            return tick - report.first_mismatch_tick
    return 64
