"""Spike-train statistics: rates, ISI distributions, synchrony.

Analysis utilities over :class:`~repro.core.record.SpikeRecord` used to
characterize the recurrent benchmark networks (rate verification, CV of
inter-spike intervals, population synchrony) and by tests validating the
generators' statistical targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.record import SpikeRecord


@dataclass(frozen=True)
class SpikeTrainStats:
    """Summary statistics of one run's spike trains."""

    n_spikes: int
    n_units: int
    n_ticks: int
    mean_rate_hz: float
    rate_std_hz: float
    mean_isi_ticks: float
    isi_cv: float
    synchrony: float  # Fano factor of the population per-tick count


def per_unit_counts(record: SpikeRecord, n_cores: int, n_neurons: int) -> np.ndarray:
    """(n_cores, n_neurons) spike counts."""
    counts = np.zeros((n_cores, n_neurons), dtype=np.int64)
    np.add.at(counts, (record.cores, record.neurons), 1)
    return counts


def per_tick_counts(record: SpikeRecord, n_ticks: int) -> np.ndarray:
    """(n_ticks,) population spike counts."""
    counts = np.zeros(n_ticks, dtype=np.int64)
    valid = record.ticks < n_ticks
    np.add.at(counts, record.ticks[valid], 1)
    return counts


def interspike_intervals(record: SpikeRecord) -> np.ndarray:
    """All inter-spike intervals, pooled across units."""
    isis = []
    order = np.lexsort((record.ticks, record.neurons, record.cores))
    ticks = record.ticks[order]
    units = record.cores[order] * (record.neurons.max() + 1 if record.neurons.size else 1) + record.neurons[order]
    for u in np.unique(units):
        t = ticks[units == u]
        if t.size >= 2:
            isis.append(np.diff(t))
    return np.concatenate(isis) if isis else np.zeros(0, dtype=np.int64)


def summarize(
    record: SpikeRecord, n_cores: int, n_neurons_per_core: int, n_ticks: int,
    tick_seconds: float = 1e-3,
) -> SpikeTrainStats:
    """Compute the full statistics bundle for one run."""
    n_units = n_cores * n_neurons_per_core
    unit_counts = per_unit_counts(record, n_cores, n_neurons_per_core).reshape(-1)
    duration = n_ticks * tick_seconds
    rates = unit_counts / duration if duration > 0 else unit_counts * 0.0

    isis = interspike_intervals(record)
    mean_isi = float(isis.mean()) if isis.size else 0.0
    isi_cv = float(isis.std() / isis.mean()) if isis.size and isis.mean() > 0 else 0.0

    pop = per_tick_counts(record, n_ticks)
    synchrony = float(pop.var() / pop.mean()) if pop.mean() > 0 else 0.0

    return SpikeTrainStats(
        n_spikes=record.n_spikes,
        n_units=n_units,
        n_ticks=n_ticks,
        mean_rate_hz=float(rates.mean()),
        rate_std_hz=float(rates.std()),
        mean_isi_ticks=mean_isi,
        isi_cv=isi_cv,
        synchrony=synchrony,
    )


def raster(
    record: SpikeRecord,
    n_ticks: int,
    units: list[tuple[int, int]] | None = None,
    max_units: int = 24,
) -> str:
    """ASCII raster plot: one row per unit, one column per tick."""
    if units is None:
        seen: list[tuple[int, int]] = []
        for c, n in zip(record.cores.tolist(), record.neurons.tolist()):
            if (c, n) not in seen:
                seen.append((c, n))
            if len(seen) >= max_units:
                break
        units = seen
    index = {u: i for i, u in enumerate(units)}
    grid = [[" "] * n_ticks for _ in units]
    for t, c, n in record.as_tuples():
        key = (c, n)
        if key in index and t < n_ticks:
            grid[index[key]][t] = "|"
    lines = [f"c{c:02d}n{n:03d} {''.join(row)}" for (c, n), row in zip(units, grid)]
    return "\n".join(lines)
