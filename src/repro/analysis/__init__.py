"""Measurement analysis: metrics, sweep grids, and report rendering."""

from repro.analysis.contour import (
    SweepGrid,
    default_rate_axis,
    default_synapse_axis,
    default_voltage_axis,
    sweep,
)
from repro.analysis.compare import DivergenceReport, compare_records, divergence_horizon
from repro.analysis.stats import SpikeTrainStats, raster, summarize
from repro.analysis.metrics import (
    energy_improvement,
    gsops,
    gsops_per_watt,
    orders_of_magnitude,
    power_improvement,
    sops,
    sops_from_counters,
    speedup,
    within_band,
)
from repro.analysis.report import (
    format_value,
    render_contour,
    render_markdown_table,
    render_series,
    render_table,
)

__all__ = [
    "SweepGrid",
    "default_rate_axis",
    "default_synapse_axis",
    "default_voltage_axis",
    "sweep",
    "DivergenceReport",
    "compare_records",
    "divergence_horizon",
    "SpikeTrainStats",
    "raster",
    "summarize",
    "energy_improvement",
    "gsops",
    "gsops_per_watt",
    "orders_of_magnitude",
    "power_improvement",
    "sops",
    "sops_from_counters",
    "speedup",
    "within_band",
    "format_value",
    "render_contour",
    "render_markdown_table",
    "render_series",
    "render_table",
]
