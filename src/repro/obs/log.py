"""Structured logging under the ``repro.*`` namespace.

One logging setup for the whole package: every logger hangs off the
``repro`` root, renders ``event key=value ...`` lines (machine-grep-able,
human-readable), writes to stderr, and takes its level from the
``REPRO_LOG_LEVEL`` environment variable (default ``WARNING``, so
library use is silent).  Engines and applications log *decisions* —
which engine was selected and why, what a pipeline estimated — not
per-tick chatter; per-tick data belongs in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import logging
import os
import sys

#: Environment variable naming the minimum level (e.g. ``DEBUG``/``INFO``).
LEVEL_ENV = "REPRO_LOG_LEVEL"

_ROOT = "repro"
_configured = False


def _fmt_value(value) -> str:
    """Render one field value; quote anything containing whitespace."""
    text = str(value)
    if any(ch.isspace() for ch in text) or text == "":
        return repr(text)
    return text


def configure(level: str | int | None = None, stream=None, force: bool = False) -> None:
    """Configure the ``repro`` root logger (idempotent unless *force*).

    *level* defaults to ``$REPRO_LOG_LEVEL`` or ``WARNING``; *stream*
    defaults to stderr.  Tests pass ``force=True`` with a capture
    stream to observe output regardless of prior configuration.
    """
    global _configured
    if _configured and not force:
        return
    root = logging.getLogger(_ROOT)
    if level is None:
        level = os.environ.get(LEVEL_ENV, "WARNING").upper()
    root.setLevel(level)
    root.propagate = False
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    root.addHandler(handler)
    _configured = True


class StructuredLogger:
    """Thin wrapper rendering ``event key=value ...`` messages."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        """The underlying stdlib logger name."""
        return self._logger.name

    def is_enabled_for(self, level: int) -> bool:
        """Whether messages at *level* would be emitted."""
        return self._logger.isEnabledFor(level)

    def _emit(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            parts = [event] + [f"{k}={_fmt_value(v)}" for k, v in fields.items()]
            self._logger.log(level, " ".join(parts))

    def debug(self, event: str, **fields) -> None:
        """Log *event* with structured *fields* at DEBUG."""
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        """Log *event* with structured *fields* at INFO."""
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        """Log *event* with structured *fields* at WARNING."""
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        """Log *event* with structured *fields* at ERROR."""
        self._emit(logging.ERROR, event, fields)


def get_logger(name: str = _ROOT) -> StructuredLogger:
    """Structured logger for *name* (must live in the ``repro`` namespace)."""
    if name != _ROOT and not name.startswith(_ROOT + "."):
        raise ValueError(f"logger name must be under the {_ROOT!r} namespace: {name!r}")
    configure()
    return StructuredLogger(logging.getLogger(name))
