"""repro.obs — unified tracing, metrics, and structured logging.

The telemetry layer shared by every kernel expression (reference
Compass, sparse FastCompass, shared-memory ParallelCompass) and the
streaming runtime:

* **tracing** — :func:`Observer.span` / per-tick phase spans into a
  ring buffer, exportable as Chrome ``trace_event`` JSON
  (:mod:`repro.obs.trace`);
* **metrics** — one registry of counters/gauges/histograms under a
  uniform ``repro_*`` name catalogue with JSON and Prometheus export
  (:mod:`repro.obs.metrics`);
* **logging** — ``repro.*`` structured loggers, level set by
  ``REPRO_LOG_LEVEL`` (:mod:`repro.obs.log`);
* **flight recorder** — an always-cheap per-tick telemetry ring
  (wall time vs the 1 ms budget, spikes, messages, occupancy) plus
  crash-dump bundles under ``REPRO_CRASH_DIR``
  (:mod:`repro.obs.flight`);
* **telemetry server** — a stdlib HTTP thread exposing ``/metrics``,
  ``/health``, ``/ready``, ``/flight``, ``/trace`` over a live
  observer (:mod:`repro.obs.server`).

Instrumentation is opt-in per engine via ``obs=Observer()`` and
near-zero-cost when absent or disabled (:func:`set_enabled`); see
docs/observability.md for the span API, the metric name catalogue, and
the trace-viewer walkthrough.
"""

from repro.obs.flight import (
    BUDGET_NS,
    CRASH_DIR_ENV,
    FLIGHT_FIELDS,
    FlightRecorder,
    crash_dump_dir,
    write_crash_dump,
)
from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    CATALOGUE,
    EVENT_METRICS,
    MetricFamily,
    MetricsRegistry,
    publish_counters,
)
from repro.obs.observer import (
    NULL_SPAN,
    Observer,
    active_observer,
    is_enabled,
    set_enabled,
)
from repro.obs.server import (
    ENDPOINTS,
    TelemetryServer,
    evaluate_health,
)
from repro.obs.trace import (
    PHASE_IDS,
    PHASES,
    Span,
    SpanStrip,
    TraceBuffer,
    now_ns,
)

__all__ = [
    "BUDGET_NS",
    "CATALOGUE",
    "CRASH_DIR_ENV",
    "ENDPOINTS",
    "EVENT_METRICS",
    "FLIGHT_FIELDS",
    "FlightRecorder",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observer",
    "PHASES",
    "PHASE_IDS",
    "Span",
    "SpanStrip",
    "StructuredLogger",
    "TelemetryServer",
    "TraceBuffer",
    "active_observer",
    "configure",
    "crash_dump_dir",
    "evaluate_health",
    "get_logger",
    "is_enabled",
    "now_ns",
    "publish_counters",
    "set_enabled",
    "write_crash_dump",
]
