"""Tracing: lightweight spans, ring buffers, Chrome trace export.

A span is one timed region — ``compile``, ``partition``, ``spawn``, or
a per-tick kernel phase (``deliver`` / ``integrate`` / ``update`` /
``route``) — recorded as ``(name, begin_ns, end_ns, tid, attrs)`` into
a bounded ring buffer.  The buffer exports Chrome ``trace_event`` JSON
loadable by ``chrome://tracing`` and Perfetto, with one timeline row
(tid) per rank.

Two recording surfaces exist:

* :class:`TraceBuffer` — the in-process ring the coordinator (rank 0)
  and the single-process engines write into;
* :class:`SpanStrip` — a fixed-layout strip of span records inside a
  ``multiprocessing.shared_memory`` segment, written lock-free by one
  parallel worker and drained into the rank-0 :class:`TraceBuffer` at
  the end of the run (timestamps are ``CLOCK_MONOTONIC``-based and so
  comparable across processes on one host).

All wall-clock reads for tracing live in this module (:func:`now_ns`),
keeping the engines' tick paths clean under the SL104 determinism lint:
timing is observed *about* the kernel, never fed back into it.
"""

from __future__ import annotations

import json
import time
from collections import deque

import numpy as np

#: Canonical per-tick kernel phases, in execution order.  Every engine
#: reports exactly these names (satisfying the cross-engine parity the
#: profiling tests assert).
PHASES = ("deliver", "integrate", "update", "route")

#: Span-name <-> integer ids for the shared-memory strips.
PHASE_IDS: dict[str, int] = {"tick": 0, **{p: i + 1 for i, p in enumerate(PHASES)}}
ID_PHASES: dict[int, str] = {i: name for name, i in PHASE_IDS.items()}


def now_ns() -> int:
    """Monotonic wall-clock timestamp in nanoseconds.

    The one sanctioned clock read for instrumentation; engines call
    this instead of :mod:`time` so the determinism source lint keeps
    their tick paths clock-free.
    """
    return time.perf_counter_ns()


class Span:
    """One recorded region: name, [begin, end) in ns, rank row, attrs."""

    __slots__ = ("name", "begin_ns", "end_ns", "tid", "attrs")

    def __init__(self, name: str, begin_ns: int, end_ns: int, tid: int = 0,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.begin_ns = begin_ns
        self.end_ns = end_ns
        self.tid = tid
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Span duration in seconds."""
        return (self.end_ns - self.begin_ns) * 1e-9

    @property
    def tick(self) -> int | None:
        """The tick attribute, if this is a per-tick span."""
        return self.attrs.get("tick") if self.attrs else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, tid={self.tid}, "
                f"dur={self.duration_s * 1e3:.3f} ms, attrs={self.attrs})")


class TraceBuffer:
    """Bounded ring of spans; overflow drops the oldest records."""

    def __init__(self, capacity: int = 65536) -> None:
        self._ring: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Maximum number of retained spans."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._ring)

    def add(self, name: str, begin_ns: int, end_ns: int, tid: int = 0,
            attrs: dict | None = None) -> None:
        """Record one completed span."""
        if len(self._ring) == self._capacity:
            self.dropped += 1
        self._ring.append(Span(name, begin_ns, end_ns, tid, attrs))

    def spans(self) -> list[Span]:
        """Every retained span, in merged tick order.

        Sort key is ``(tick, begin_ns)`` with tick-less spans (compile,
        spawn, ...) ordered purely by timestamp before tick 0 — so a
        multi-rank trace interleaves all ranks' phase spans tick by
        tick, the order the acceptance trace is checked in.
        """
        def key(span: Span):
            tick = span.tick
            return (tick if tick is not None else -1, span.begin_ns, span.tid)

        return sorted(self._ring, key=key)

    def tids(self) -> list[int]:
        """Sorted set of rank rows present in the buffer."""
        return sorted({span.tid for span in self._ring})

    # -- Chrome trace_event export -----------------------------------------
    def chrome_trace_events(self, pid: int = 0) -> list[dict]:
        """The buffer as Chrome ``trace_event`` complete events.

        Timestamps are microseconds relative to the earliest span, so
        traces load at t=0 in ``chrome://tracing`` / Perfetto.  One
        metadata event names each rank's timeline row.
        """
        spans = self.spans()
        if not spans:
            return []
        base = min(span.begin_ns for span in spans)
        events: list[dict] = [
            {
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": "rank0 (coordinator)" if tid == 0 else f"rank{tid}"},
            }
            for tid in self.tids()
        ]
        for span in spans:
            event = {
                "name": span.name,
                "ph": "X",
                "ts": (span.begin_ns - base) / 1e3,
                "dur": (span.end_ns - span.begin_ns) / 1e3,
                "pid": pid,
                "tid": span.tid,
            }
            if span.attrs:
                event["args"] = dict(span.attrs)
            events.append(event)
        return events

    def export_chrome(self, path: str) -> int:
        """Write the Chrome-trace JSON document to *path*; return #events."""
        events = self.chrome_trace_events()
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
        return len(events)


class SpanStrip:
    """Per-rank span strip over a shared-memory int64 buffer.

    Layout (int64 words): ``[written_total, capacity]`` header followed
    by ``capacity`` records of ``(phase_id, tick, begin_ns, end_ns)``.
    The single writer (one worker process) ring-overwrites on overflow;
    the single reader (the coordinator) drains after the tick barrier,
    so no locking is needed.
    """

    HEADER = 2
    RECORD = 4

    def __init__(self, buf, capacity: int, reset: bool = False) -> None:
        # np.ndarray(buffer=...) over np.frombuffer: the latter keeps a
        # buffer export alive past local teardown, which makes
        # SharedMemory.__del__ raise BufferError at worker exit.
        self._arr = np.ndarray(self.HEADER + self.RECORD * capacity,
                               dtype=np.int64, buffer=buf)
        self.capacity = capacity
        if reset:
            self._arr[0] = 0
            self._arr[1] = capacity

    @staticmethod
    def nbytes(capacity: int) -> int:
        """Bytes needed for a strip of *capacity* records."""
        return 8 * (SpanStrip.HEADER + SpanStrip.RECORD * capacity)

    def record(self, phase_id: int, tick: int, begin_ns: int, end_ns: int) -> None:
        """Append one span record (ring-overwriting the oldest)."""
        written = int(self._arr[0])
        base = self.HEADER + self.RECORD * (written % self.capacity)
        self._arr[base] = phase_id
        self._arr[base + 1] = tick
        self._arr[base + 2] = begin_ns
        self._arr[base + 3] = end_ns
        self._arr[0] = written + 1

    def record_phase(self, name: str, tick: int, begin_ns: int, end_ns: int) -> None:
        """Append one span by canonical phase name."""
        self.record(PHASE_IDS[name], tick, begin_ns, end_ns)

    @property
    def written(self) -> int:
        """Total records ever written (>= capacity means overflow)."""
        return int(self._arr[0])

    def records(self) -> list[tuple[int, int, int, int]]:
        """Retained records, oldest first."""
        written = self.written
        n = min(written, self.capacity)
        start = written % self.capacity if written > self.capacity else 0
        out = []
        for i in range(n):
            base = self.HEADER + self.RECORD * ((start + i) % self.capacity)
            out.append(tuple(int(x) for x in self._arr[base:base + self.RECORD]))
        return out

    def drain_into(self, trace: TraceBuffer, tid: int) -> int:
        """Merge every retained record into *trace* under row *tid*."""
        n = 0
        for phase_id, tick, begin_ns, end_ns in self.records():
            trace.add(ID_PHASES.get(phase_id, f"phase{phase_id}"),
                      begin_ns, end_ns, tid=tid, attrs={"tick": tick})
            n += 1
        self._arr[0] = 0
        return n

    def release(self) -> None:
        """Drop the view into the shared buffer (before segment close)."""
        self._arr = np.zeros(0, dtype=np.int64)
