"""Metric registry: one catalogue of names across every engine.

The paper's headline claims are measurements — synaptic operations,
messages, time- and energy-to-solution — so every kernel expression
must account the *same* quantities under the *same* names.  This module
is that single source of truth: a registry of counters, gauges, and
histograms with a uniform ``repro_*`` naming catalogue, snapshot-able
to JSON and to the Prometheus text exposition format.

The bespoke per-engine plumbing (:class:`~repro.core.counters.EventCounters`
accumulation structs, ``phase_seconds`` dicts, the streaming
``StreamReport``) remains as thin compat shims over this registry:
:func:`publish_counters` maps an ``EventCounters`` onto the catalogue,
so a snapshot from any engine is directly comparable — bit-identical
for the deterministic event metrics on the same seeded network.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Kinds a metric family can have.
KINDS = ("counter", "gauge", "histogram")

#: Default histogram buckets (seconds): micro- to multi-second spans.
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: The uniform metric-name catalogue: name -> (kind, help).  Engines
#: may register further metrics, but these names are shared by every
#: expression and documented in docs/observability.md.
CATALOGUE: dict[str, tuple[str, str]] = {
    "repro_ticks_total": ("counter", "Simulation ticks completed."),
    "repro_spikes_total": ("counter", "Neuron firings."),
    "repro_synaptic_events_total": (
        "counter", "Synaptic operations (active synapse x arriving spike)."),
    "repro_deliveries_total": (
        "counter", "Axon events delivered, including external inputs."),
    "repro_neuron_updates_total": (
        "counter", "Neurons evaluated (leak/threshold) over the run."),
    "repro_messages_total": (
        "counter", "Aggregated cross-core/cross-rank spike messages."),
    "repro_hops_total": ("counter", "Mesh router hops traversed."),
    "repro_membrane_saturations_total": (
        "counter", "Membrane potentials clipped at the 20-bit bounds."),
    "repro_max_core_events_per_tick": (
        "gauge", "Busiest core-tick synaptic event load."),
    "repro_queue_depth": (
        "gauge", "Staged future input-event ticks awaiting injection."),
    "repro_active_neurons": (
        "gauge", "Neurons in the last tick's activity-gated update set."),
    "repro_active_fraction": (
        "gauge", "Active-set size as a fraction of all neurons, last tick."),
    "repro_active_neuron_updates_total": (
        "counter",
        "Neuron updates actually computed (gated path skips settled "
        "passive neurons; engine-dependent, unlike the logical "
        "repro_neuron_updates_total)."),
    "repro_phase_seconds_total": (
        "counter", "Wall-clock seconds spent per tick phase (label: phase)."),
    "repro_tick_seconds": (
        "histogram", "Wall-clock seconds per simulated tick."),
    "repro_batch_lanes": (
        "gauge", "Replica lanes configured on the batched engine."),
    "repro_batch_occupancy": (
        "gauge", "Fraction of batch lanes holding an active session."),
    "repro_batch_passes_total": (
        "counter", "Vectorized batched passes (all lanes advance one tick)."),
    "repro_lane_ticks_total": (
        "counter", "Lane-ticks advanced across the batch (B per pass)."),
    "repro_sessions_total": (
        "counter", "Sessions submitted to the model server."),
    "repro_sessions_completed_total": (
        "counter", "Sessions served to completion."),
    "repro_compile_cache_hits_total": (
        "counter", "Compiled-model LRU cache hits."),
    "repro_compile_cache_misses_total": (
        "counter", "Compiled-model LRU cache misses (compiles performed)."),
    "repro_sanitize_accesses_total": (
        "counter", "Shared-memory accesses recorded by the sanitizer's "
                   "shadow views (coalesced spans)."),
    "repro_sanitize_findings_total": (
        "counter", "Sanitizer diagnostics reported across analyzed runs."),
    "repro_sanitize_races_total": (
        "counter", "SL210 data races reported across analyzed runs."),
    "repro_frames_total": ("counter", "Frames streamed through the runtime."),
    "repro_input_events_total": ("counter", "Rate-coded input spike events."),
    "repro_output_spikes_total": ("counter", "Output spikes delivered to sinks."),
    "repro_wall_seconds_total": ("counter", "Streaming-session wall-clock seconds."),
    "repro_rtf": (
        "gauge", "Real-time factor over the flight window: biological "
                 "seconds simulated per wall-clock second (1.0 = the "
                 "paper's real-time 1 ms tick)."),
    "repro_tick_budget_ratio": (
        "gauge", "Last tick's wall time as a fraction of the 1 ms "
                 "real-time budget (<= 1 means real time)."),
    "repro_session_wait_seconds": (
        "histogram", "Serving SLO: session submit -> lane admission wait."),
    "repro_session_latency_seconds": (
        "histogram", "Serving SLO: session submit -> finalize latency."),
    "repro_crash_dumps_total": (
        "counter", "Postmortem crash-dump bundles written."),
    "repro_checkpoints_total": (
        "counter", "Engine checkpoints captured (periodic + preemption)."),
    "repro_checkpoint_bytes_total": (
        "counter", "Bytes of checkpoint data written to disk."),
    "repro_telemetry_requests_total": (
        "counter", "Telemetry HTTP requests served (label: endpoint)."),
}

#: The deterministic event subset: identical across engines for the
#: same (network, seed, inputs), regardless of wall clock or host.
EVENT_METRICS: dict[str, str] = {
    "repro_ticks_total": "ticks",
    "repro_spikes_total": "spikes",
    "repro_synaptic_events_total": "synaptic_events",
    "repro_deliveries_total": "deliveries",
    "repro_neuron_updates_total": "neuron_updates",
    "repro_messages_total": "messages",
    "repro_hops_total": "hops",
    "repro_membrane_saturations_total": "membrane_saturations",
    "repro_max_core_events_per_tick": "max_core_events_per_tick",
}


def _labels_key(labels: dict) -> tuple:
    """Canonical hashable key for one label set."""
    return tuple(sorted(labels.items()))


def _escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value) -> str:
    """Escape one label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


def _exposition_name(name: str, kind: str) -> str:
    """The sample name in the text exposition.

    Counters carry the ``_total`` suffix consistently: families
    registered without it are suffixed at export time, so scrapes never
    see a bare counter name (the JSON snapshot keeps the registered
    name — it is a stable API asserted by the cross-engine tests).
    """
    if kind == "counter" and not name.endswith("_total"):
        return name + "_total"
    return name


@dataclass
class _HistogramState:
    """Cumulative histogram state for one label set."""

    buckets: tuple
    counts: list = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.n += 1

    def as_dict(self) -> dict:
        """Snapshot form: cumulative counts per upper bound."""
        cumulative = 0
        buckets = {}
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            buckets[repr(float(bound))] = cumulative
        buckets["+Inf"] = cumulative + self.counts[-1]
        return {"buckets": buckets, "sum": self.total, "count": self.n}


class MetricFamily:
    """One named metric with zero or more label sets."""

    __slots__ = ("name", "kind", "help", "buckets", "_values")

    def __init__(self, name: str, kind: str, help: str = "", buckets=DEFAULT_BUCKETS):
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; expected one of {KINDS}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets)
        self._values: dict[tuple, object] = {}

    # -- write API ---------------------------------------------------------
    def inc(self, amount=1, **labels) -> None:
        """Add *amount* to this counter/gauge (creating the label set)."""
        key = _labels_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def set(self, value, **labels) -> None:
        """Set the absolute value (gauges, and counter re-publication)."""
        self._values[_labels_key(labels)] = value

    def set_unlabeled(self, value) -> None:
        """:meth:`set` for the empty label set, skipping key building.

        The per-tick hot gauges (budget ratio, real-time factor) write
        once per simulated millisecond; this shaves the ``**labels``
        plumbing off that path.
        """
        self._values[()] = value

    def value_unlabeled(self):
        """:meth:`value` for the empty label set (hot-path read)."""
        return self._values.get((), 0)

    def set_max(self, value, **labels) -> None:
        """Raise the value to *value* if larger (high-watermark gauges)."""
        key = _labels_key(labels)
        current = self._values.get(key, 0)
        if value > current:
            self._values[key] = value

    def observe(self, value: float, **labels) -> None:
        """Record one observation into this histogram."""
        key = _labels_key(labels)
        state = self._values.get(key)
        if state is None:
            state = self._values[key] = _HistogramState(self.buckets)
        state.observe(value)

    # -- read API ----------------------------------------------------------
    def value(self, **labels):
        """Current value for one label set (0 if never written)."""
        return self._values.get(_labels_key(labels), 0)

    def items(self):
        """(labels_key, value) pairs in insertion order.

        Returns a list copy so exporters on another thread (the
        telemetry HTTP server) never race a concurrent label-set
        insertion into a "dictionary changed size" error.
        """
        return list(self._values.items())


class MetricsRegistry:
    """Ordered collection of metric families with uniform export."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _get_or_create(self, name: str, kind: str, help: str, **kwargs) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            if not help and name in CATALOGUE:
                help = CATALOGUE[name][1]
            family = self._families[name] = MetricFamily(name, kind, help, **kwargs)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        """Get or create the counter family *name*."""
        return self._get_or_create(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        """Get or create the gauge family *name*."""
        return self._get_or_create(name, "gauge", help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> MetricFamily:
        """Get or create the histogram family *name*."""
        return self._get_or_create(name, "histogram", help, buckets=buckets)

    def families(self) -> list[MetricFamily]:
        """Every registered family, in registration order."""
        return list(self._families.values())

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict:
        """Flat {``name{labels}``: value} mapping of every sample.

        Counters and gauges map to their numbers; histograms map to a
        ``{"buckets": ..., "sum": ..., "count": ...}`` dict.  Insertion
        order is preserved, so two registries fed identically produce
        identical snapshots.
        """
        out: dict = {}
        for family in self.families():
            for key, value in family.items():
                sample = family.name + _render_labels(key)
                if isinstance(value, _HistogramState):
                    out[sample] = value.as_dict()
                else:
                    out[sample] = value
        return out

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        HELP text and label values are escaped per the format spec
        (``\\`` / ``\\n``, plus ``\\"`` in label values), and counters
        are emitted with a consistent ``_total`` suffix.  Iteration is
        over list copies, so a scrape racing engine writes sees a
        slightly stale but well-formed exposition.
        """
        lines: list[str] = []
        for family in self.families():
            name = _exposition_name(family.name, family.kind)
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, value in family.items():
                if isinstance(value, _HistogramState):
                    cumulative = 0
                    for bound, count in zip(family.buckets, value.counts):
                        cumulative += count
                        labels = _render_labels(key + (("le", repr(float(bound))),))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _render_labels(key + (("le", "+Inf"),))
                    lines.append(
                        f"{name}_bucket{labels} {cumulative + value.counts[-1]}"
                    )
                    base = _render_labels(key)
                    lines.append(f"{name}_sum{base} {value.total}")
                    lines.append(f"{name}_count{base} {value.n}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {value}")
        return "\n".join(lines) + "\n"


def publish_counters(registry: MetricsRegistry, counters) -> None:
    """Publish an :class:`~repro.core.counters.EventCounters` snapshot.

    Sets the absolute value of every deterministic event metric in the
    catalogue from *counters* (duck-typed; any object with the counter
    attributes works).  Idempotent — safe to call once per tick or once
    per run; the registry always reflects the latest totals.
    """
    for name, attr in EVENT_METRICS.items():
        kind = CATALOGUE[name][0]
        family = registry.counter(name) if kind == "counter" else registry.gauge(name)
        family.set(getattr(counters, attr, 0))
