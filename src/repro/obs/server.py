"""Telemetry HTTP plane: /metrics, /health, /ready, /flight, /trace.

A stdlib :class:`http.server.ThreadingHTTPServer` on a daemon thread,
serving one :class:`~repro.obs.observer.Observer`'s registry, flight
ring, and span trace while an engine runs.  No third-party dependencies
— the exporters already speak the Prometheus text format and JSON, the
server only routes:

========== =============================================================
endpoint   payload
========== =============================================================
/metrics   Prometheus text exposition (``text/plain; version=0.0.4``)
/health    JSON health document (:func:`evaluate_health`); HTTP 503
           when any liveness probe reports dead
/ready     ``{"ready": true}`` once at least one tick has been
           recorded; 503 before that (load-balancer warm-up gate)
/flight    the flight ring as JSON (``?last=N`` for the tail)
/trace     the span ring as a Chrome ``trace_event`` JSON document
========== =============================================================

Wired into :class:`~repro.runtime.serving.ModelServer` and
:class:`~repro.runtime.streaming.StreamingRuntime` via
``telemetry_port=`` (0 picks an ephemeral port, exposed as ``.port``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.log import get_logger

log = get_logger("repro.obs.server")

#: Endpoints counted in ``repro_telemetry_requests_total``.
ENDPOINTS = ("/metrics", "/health", "/ready", "/flight", "/trace")

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def evaluate_health(obs, liveness: dict | None = None) -> dict:
    """Build the /health document from an observer's live telemetry.

    Status is ``ok`` while every liveness probe passes and the last
    tick stayed within 2x the 1 ms budget, ``degraded`` when the engine
    is running behind (budget ratio > 2 — e.g. a batch pass advancing
    many lanes), and ``failed`` when a worker probe reports dead.
    Real-time-factor and budget gauges read 0 before the first recorded
    tick; they are reported as ``null`` then, never a false alarm.
    """
    workers = {}
    alive = True
    for name, probe in (liveness or {}).items():
        try:
            ok = bool(probe())
        except Exception:  # a dead probe is a dead worker
            ok = False
        workers[name] = ok
        alive = alive and ok

    flight = getattr(obs, "flight", None) if obs is not None else None
    ticks = len(flight) if flight is not None else 0
    rtf = None
    budget_ratio = None
    if ticks:
        rtf = flight.real_time_factor()
        budget_ratio = float(obs.metrics.gauge("repro_tick_budget_ratio").value())

    if not alive:
        status = "failed"
    elif budget_ratio is not None and budget_ratio > 2.0:
        status = "degraded"
    else:
        status = "ok"

    doc = {
        "status": status,
        "ticks": ticks,
        "real_time_factor": rtf,
        "budget_ratio": budget_ratio,
        "queue_depth": (
            float(obs.metrics.gauge("repro_queue_depth").value())
            if obs is not None else 0.0
        ),
        "occupancy": (
            float(obs.metrics.gauge("repro_batch_occupancy").value())
            if obs is not None else 0.0
        ),
        "workers": workers,
    }
    if flight is not None and ticks:
        doc["flight"] = flight.summary(last=min(ticks, 256))
    return doc


class _Handler(BaseHTTPRequestHandler):
    """Routes one observer; instantiated per request by http.server."""

    # set by TelemetryServer via type(); silences the default stderr log
    server_version = "repro-telemetry"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        log.debug("obs.http", request=format % args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc) -> None:
        self._send(status, json.dumps(doc, indent=2).encode("utf-8"),
                   "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        obs = telemetry.obs
        if route in ENDPOINTS and obs is not None:
            obs.metrics.counter("repro_telemetry_requests_total").inc(
                endpoint=route)
        if route == "/metrics":
            body = obs.metrics.to_prometheus() if obs is not None else ""
            self._send(200, body.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
        elif route == "/health":
            doc = evaluate_health(obs, telemetry.liveness)
            self._send_json(503 if doc["status"] == "failed" else 200, doc)
        elif route == "/ready":
            flight = getattr(obs, "flight", None) if obs is not None else None
            ready = flight is not None and len(flight) > 0
            self._send_json(200 if ready else 503, {"ready": ready})
        elif route == "/flight":
            flight = getattr(obs, "flight", None) if obs is not None else None
            if flight is None:
                self._send_json(404, {"error": "no flight recorder attached"})
                return
            query = parse_qs(parsed.query)
            last = None
            if "last" in query:
                try:
                    last = max(1, int(query["last"][0]))
                except ValueError:
                    self._send_json(400, {"error": "last must be an integer"})
                    return
            self._send_json(200, flight.to_json(last))
        elif route == "/trace":
            events = obs.trace.chrome_trace_events() if obs is not None else []
            self._send_json(200, {"traceEvents": events})
        else:
            self._send_json(404, {"error": f"unknown endpoint {route!r}",
                                  "endpoints": list(ENDPOINTS)})


class TelemetryServer:
    """Background HTTP server over one observer's live telemetry.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  *liveness* maps probe names to zero-argument callables
    returning truthy-while-alive; runtimes register their worker /
    engine probes via :meth:`add_liveness`.  The server thread is a
    daemon: it never blocks interpreter exit, but call :meth:`close`
    for a deterministic shutdown (the runtimes do, from their own
    ``close()``).
    """

    def __init__(self, obs, port: int = 0, host: str = "127.0.0.1",
                 liveness: dict | None = None) -> None:
        self.obs = obs
        self.liveness: dict = dict(liveness or {})
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-telemetry",
            daemon=True)
        self._thread.start()
        log.info("obs.telemetry_started", url=self.url)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def add_liveness(self, name: str, probe) -> None:
        """Register/replace one liveness probe (name -> callable)."""
        self.liveness[name] = probe

    def close(self) -> None:
        """Stop serving and join the server thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        log.info("obs.telemetry_stopped", url=self.url)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
