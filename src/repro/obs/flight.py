"""Flight recorder: an always-cheap per-tick telemetry ring + crash dumps.

The paper's headline claim is *real-time* operation — a fixed 1 ms tick
budget sustained at scale — so a long-lived engine needs a continuous
record of wall-clock-vs-biological-time behaviour that costs next to
nothing while everything is healthy and is *already there* when
something goes wrong.  This module provides both halves:

* :class:`FlightRecorder` — a fixed-size numpy ring of per-tick
  snapshots (spikes, messages, active fraction, per-phase durations,
  tick wall time against the 1 ms budget, batch lane occupancy), fed by
  a single :meth:`~repro.obs.observer.Observer.flight_tick` hook in
  each engine's tick loop.  Recording one tick is one row assignment
  into a preallocated ``(capacity, n_fields)`` float64 array; the ring
  can be snapshotted to JSON (the ``/flight`` telemetry endpoint) or
  dumped to ``.npz`` + JSON at any moment.
* :func:`write_crash_dump` — a postmortem bundle writer.  When
  ``REPRO_CRASH_DIR`` is set, a failing engine (a
  :class:`~repro.compass.parallel.WorkerFailedError`, an unhandled
  exception in the serving or streaming runtimes) leaves behind a
  directory containing the flight ring, the metric snapshot, the recent
  span trace, and — when the sanitizer was armed — its report, so a
  crashed worker no longer takes its telemetry with it.

Real-time cortical simulation work (Rhodes et al.; Simula et al.)
treats wall-vs-biological time as a first-class measurement; the
recorder's derived quantities follow that convention: the *budget
ratio* is ``tick wall time / 1 ms`` (<= 1 means real time) and the
*real-time factor* is its reciprocal aggregated over the window.
"""

from __future__ import annotations

import json
import os
import time
import traceback as _traceback

import numpy as np

from repro.core import params
from repro.obs.log import get_logger
from repro.utils.validation import require

log = get_logger("repro.obs.flight")

#: The 1 ms real-time tick budget, in nanoseconds (paper Section II).
BUDGET_NS = int(params.TICK_SECONDS * 1e9)

#: Environment variable naming the crash-dump directory.  Unset (the
#: default) disables postmortem bundles entirely.
CRASH_DIR_ENV = "REPRO_CRASH_DIR"

#: Ring columns, in storage order.  ``tick`` is the engine's own tick
#: (lane-local pass index on the batched engine); ``*_ns`` are
#: durations; ``spikes`` / ``messages`` are this tick's counts (message
#: counter deltas are computed by the recorder); ``active_fraction`` is
#: the activity-gated update fraction (1.0 on dense paths) and
#: ``occupancy`` the batch-lane occupancy (0.0 off the batched engine).
FLIGHT_FIELDS = (
    "tick",
    "wall_ns",
    "spikes",
    "messages",
    "active_fraction",
    "occupancy",
    "deliver_ns",
    "integrate_ns",
    "update_ns",
    "route_ns",
)

_F = {name: i for i, name in enumerate(FLIGHT_FIELDS)}


class FlightRecorder:
    """Fixed-size ring of per-tick telemetry rows.

    One :meth:`record` call per tick writes one preallocated row —
    no Python object churn, no growth, safe to leave enabled on every
    long-lived engine.  Reads (:meth:`rows`, :meth:`summary`,
    :meth:`to_json`, :meth:`dump`) reconstruct chronological order from
    the write cursor; a concurrent reader (the telemetry HTTP thread)
    sees at worst one torn in-flight row, never a crash.
    """

    def __init__(self, capacity: int = 4096) -> None:
        require(capacity >= 1, f"flight capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rows = np.zeros((self.capacity, len(FLIGHT_FIELDS)), dtype=np.float64)
        self.recorded = 0  # total rows ever written (>= capacity: overwrite)
        self._last_messages = 0
        self._wall_sum_ns = 0.0  # running wall-time sum over retained rows

    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    # -- write (the per-tick hot path) -------------------------------------
    def record(
        self,
        tick: int,
        wall_ns: int,
        spikes: int,
        messages_total: int,
        active_fraction: float = 1.0,
        occupancy: float = 0.0,
        deliver_ns: int = 0,
        integrate_ns: int = 0,
        update_ns: int = 0,
        route_ns: int = 0,
    ) -> float:
        """Record one tick and return the updated real-time factor.

        *messages_total* is the engine's cumulative message counter;
        the recorder stores the per-tick delta (a counter that moved
        backwards — a lane reset, a fresh run — restarts the baseline
        rather than going negative).  Returning the windowed real-time
        factor saves the per-tick hook a second call.
        """
        delta = messages_total - self._last_messages
        if delta < 0:
            delta = messages_total
        self._last_messages = messages_total
        slot = self.recorded % self.capacity
        if self.recorded >= self.capacity:  # evicting: keep window sum exact
            self._wall_sum_ns -= self._rows[slot, 1]
        self._wall_sum_ns += wall_ns
        self._rows[slot] = (
            tick, wall_ns, spikes, delta, active_fraction, occupancy,
            deliver_ns, integrate_ns, update_ns, route_ns,
        )
        self.recorded += 1
        wall_sum = self._wall_sum_ns
        if wall_sum <= 0.0:
            return float("inf")
        n = self.recorded
        if n > self.capacity:
            n = self.capacity
        return n * BUDGET_NS / wall_sum

    # -- read ---------------------------------------------------------------
    def real_time_factor(self) -> float:
        """Real-time factor over the retained window, O(1).

        Biological seconds simulated per wall-clock second: 1.0 means
        the engine is holding the paper's 1 ms tick budget exactly.
        Maintained incrementally so the per-tick hook stays cheap.
        """
        n = len(self)
        if n == 0:
            return 0.0
        if self._wall_sum_ns <= 0.0:
            return float("inf")
        return (n * params.TICK_SECONDS) / (self._wall_sum_ns * 1e-9)

    def rows(self, last: int | None = None) -> np.ndarray:
        """Retained rows in chronological order, optionally the tail.

        Returns a ``(n, len(FLIGHT_FIELDS))`` float64 copy.
        """
        n = len(self)
        if n == 0:
            return np.zeros((0, len(FLIGHT_FIELDS)), dtype=np.float64)
        if self.recorded > self.capacity:
            start = self.recorded % self.capacity
            out = np.concatenate([self._rows[start:], self._rows[:start]])
        else:
            out = self._rows[:n].copy()
        if last is not None and last < out.shape[0]:
            out = out[-int(last):]
        return out

    def column(self, name: str, last: int | None = None) -> np.ndarray:
        """One field's values over the retained window."""
        return self.rows(last)[:, _F[name]]

    def summary(self, last: int | None = None) -> dict:
        """Aggregate view of the retained window.

        Well-defined on an empty ring (all zeros / compliant), mirroring
        the StreamReport zero-tick guards: no division ever raises.
        """
        rows = self.rows(last)
        n = rows.shape[0]
        if n == 0:
            return {
                "ticks": 0,
                "wall_seconds": 0.0,
                "mean_tick_ms": 0.0,
                "max_tick_ms": 0.0,
                "last_tick_ms": 0.0,
                "budget_ratio_last": 0.0,
                "budget_ratio_max": 0.0,
                "budget_compliance": 1.0,
                "real_time_factor": 0.0,
                "spikes_per_second": 0.0,
                "messages_per_second": 0.0,
                "spikes": 0,
                "messages": 0,
                "active_fraction_mean": 0.0,
                "occupancy_last": 0.0,
            }
        wall = rows[:, _F["wall_ns"]]
        wall_total_s = float(wall.sum()) * 1e-9
        spikes = float(rows[:, _F["spikes"]].sum())
        messages = float(rows[:, _F["messages"]].sum())
        return {
            "ticks": n,
            "wall_seconds": wall_total_s,
            "mean_tick_ms": float(wall.mean()) * 1e-6,
            "max_tick_ms": float(wall.max()) * 1e-6,
            "last_tick_ms": float(wall[-1]) * 1e-6,
            "budget_ratio_last": float(wall[-1]) / BUDGET_NS,
            "budget_ratio_max": float(wall.max()) / BUDGET_NS,
            "budget_compliance": float(np.count_nonzero(wall <= BUDGET_NS)) / n,
            "real_time_factor": (
                (n * params.TICK_SECONDS) / wall_total_s
                if wall_total_s > 0.0 else float("inf")
            ),
            "spikes_per_second": spikes / wall_total_s if wall_total_s else 0.0,
            "messages_per_second": messages / wall_total_s if wall_total_s else 0.0,
            "spikes": int(spikes),
            "messages": int(messages),
            "active_fraction_mean": float(rows[:, _F["active_fraction"]].mean()),
            "occupancy_last": float(rows[-1, _F["occupancy"]]),
        }

    def to_json(self, last: int | None = None) -> dict:
        """JSON-ready snapshot: schema, rows, summary, ring state."""
        rows = self.rows(last)
        return {
            "fields": list(FLIGHT_FIELDS),
            "budget_ns": BUDGET_NS,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": max(0, self.recorded - self.capacity),
            "rows": rows.tolist(),
            "summary": self.summary(last),
        }

    # -- dump ---------------------------------------------------------------
    def dump(self, directory: str, prefix: str = "flight") -> tuple[str, str]:
        """Write the ring as ``<prefix>.npz`` + ``<prefix>.json``.

        The ``.npz`` holds the chronological row matrix plus the field
        names; the ``.json`` holds the summary and ring metadata.
        Returns the two paths.
        """
        os.makedirs(directory, exist_ok=True)
        npz_path = os.path.join(directory, f"{prefix}.npz")
        json_path = os.path.join(directory, f"{prefix}.json")
        np.savez_compressed(
            npz_path,
            rows=self.rows(),
            fields=np.array(FLIGHT_FIELDS),
            budget_ns=np.int64(BUDGET_NS),
        )
        doc = self.to_json()
        doc.pop("rows")  # bulk data lives in the .npz
        with open(json_path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        return npz_path, json_path


# -- crash dumps ------------------------------------------------------------

_dump_seq = 0


def crash_dump_dir() -> str | None:
    """The configured crash-dump directory, or None when disabled."""
    return os.environ.get(CRASH_DIR_ENV) or None


def write_crash_dump(
    obs,
    reason: str,
    *,
    detail: str = "",
    exc: BaseException | None = None,
    sanitize_report=None,
    crash_dir: str | None = None,
    checkpoint=None,
) -> str | None:
    """Write a postmortem bundle; return its path (None when disabled).

    The bundle is a directory ``crash-<timestamp>-<pid>-<seq>/`` under
    *crash_dir* (default: ``$REPRO_CRASH_DIR``; unset disables dumps)
    containing:

    * ``manifest.json`` — reason, detail/traceback, timestamps, the
      flight summary;
    * ``flight.npz`` + ``flight.json`` — the flight ring (when *obs*
      carries a recorder);
    * ``metrics.json`` — the metric registry snapshot;
    * ``trace.json`` — the span ring as a Chrome trace;
    * ``sanitize.json`` — the sanitizer report, when one was armed;
    * ``checkpoint.npz`` — a restorable engine checkpoint (when the
      caller holds one, e.g. a ``checkpoint_every`` engine/runtime), so
      a crashed run can resume from the last good tick.

    Never raises: a dump failure is logged and swallowed — postmortems
    must not mask the original error.
    """
    global _dump_seq
    crash_dir = crash_dir or crash_dump_dir()
    if crash_dir is None:
        return None
    if exc is not None and getattr(exc, "_crash_dumped", False):
        # Already bundled closer to the failure (e.g. the parallel
        # engine's worker-failure path); don't write a duplicate as the
        # exception propagates through wrapping runtimes.
        return None
    if exc is not None:
        try:
            exc._crash_dumped = True
        except AttributeError:  # exceptions with __slots__
            pass
    try:
        _dump_seq += 1
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        bundle = os.path.join(
            crash_dir, f"crash-{stamp}-{os.getpid()}-{_dump_seq}"
        )
        os.makedirs(bundle, exist_ok=True)
        files = ["manifest.json"]
        manifest: dict = {
            "reason": reason,
            "detail": detail,
            "created": stamp,
            "pid": os.getpid(),
        }
        if exc is not None:
            manifest["exception"] = "".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
        if obs is not None:
            flight = getattr(obs, "flight", None)
            if flight is not None:
                flight.dump(bundle)
                files += ["flight.npz", "flight.json"]
                manifest["flight_summary"] = flight.summary()
            obs.write_metrics_json(os.path.join(bundle, "metrics.json"))
            obs.export_chrome_trace(os.path.join(bundle, "trace.json"))
            files += ["metrics.json", "trace.json"]
            obs.metrics.counter("repro_crash_dumps_total").inc()
        if sanitize_report is not None:
            with open(os.path.join(bundle, "sanitize.json"), "w",
                      encoding="utf-8") as f:
                f.write(sanitize_report.render_json())
                f.write("\n")
            files.append("sanitize.json")
        if checkpoint is not None and hasattr(checkpoint, "save"):
            checkpoint.save(os.path.join(bundle, "checkpoint.npz"))
            files.append("checkpoint.npz")
            manifest["checkpoint_tick"] = int(checkpoint.tick)
        manifest["files"] = files
        with open(os.path.join(bundle, "manifest.json"), "w",
                  encoding="utf-8") as f:
            json.dump(manifest, f, indent=2)
            f.write("\n")
        log.error("obs.crash_dump", path=bundle, reason=reason)
        return bundle
    except OSError as err:  # pragma: no cover - disk-full / perms paths
        log.warning("obs.crash_dump_failed", reason=reason, error=str(err))
        return None
