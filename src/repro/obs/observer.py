"""The Observer: one telemetry session shared by every engine.

An :class:`Observer` bundles a trace ring buffer and a metrics
registry; engines accept one via ``obs=`` and, when it is active,
record per-tick phase spans, publish their event counters, and time
setup stages (compile / partition / spawn).  When no observer is
attached — the default — the instrumentation cost is a single
``is not None`` check per guarded site, and the module-level
:func:`set_enabled` flag can silence every attached observer at once
(the disabled-overhead benchmark holds this path to <= 5%).
"""

from __future__ import annotations

from repro.obs.flight import BUDGET_NS, FlightRecorder
from repro.obs.metrics import (
    EVENT_METRICS,
    MetricsRegistry,
    publish_counters,
)
from repro.obs.trace import PHASES, TraceBuffer, now_ns

#: Module-level master switch: when False, every Observer reports
#: inactive and spans become no-ops, regardless of per-observer state.
_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Flip the module-level instrumentation switch."""
    global _ENABLED
    _ENABLED = bool(enabled)


def is_enabled() -> bool:
    """Whether the module-level instrumentation switch is on."""
    return _ENABLED


class _NullSpan:
    """No-op span: what disabled instrumentation hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager recording one span into an observer's trace."""

    __slots__ = ("_obs", "_name", "_tid", "_attrs", "_begin")

    def __init__(self, obs: "Observer", name: str, tid: int, attrs: dict | None):
        self._obs = obs
        self._name = name
        self._tid = tid
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        self._begin = now_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self._obs.trace.add(self._name, self._begin, now_ns(),
                            tid=self._tid, attrs=self._attrs)
        return False


class Observer:
    """One observability session: trace buffer + metrics registry."""

    def __init__(self, *, enabled: bool = True, trace_capacity: int = 65536,
                 flight_capacity: int = 4096) -> None:
        self.enabled = enabled
        self.trace = TraceBuffer(capacity=trace_capacity)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(flight_capacity) if flight_capacity else None
        self._phase_counter = self.metrics.counter("repro_phase_seconds_total")
        self._tick_hist = self.metrics.histogram("repro_tick_seconds")
        self._budget_gauge = self.metrics.gauge("repro_tick_budget_ratio")
        self._rtf_gauge = self.metrics.gauge("repro_rtf")
        self._occupancy_gauge = self.metrics.gauge("repro_batch_occupancy")

    @property
    def active(self) -> bool:
        """True when both this observer and the module switch are on."""
        return self.enabled and _ENABLED

    # -- spans -------------------------------------------------------------
    def span(self, name: str, tid: int = 0, **attrs):
        """Context manager timing one region (no-op when inactive)."""
        if not self.active:
            return NULL_SPAN
        return _SpanHandle(self, name, tid, attrs or None)

    def phase(self, name: str, tick: int, begin_ns: int, end_ns: int,
              tid: int = 0) -> None:
        """Record one completed per-tick phase span + its seconds metric."""
        self.trace.add(name, begin_ns, end_ns, tid=tid, attrs={"tick": tick})
        self._phase_counter.inc((end_ns - begin_ns) * 1e-9, phase=name)

    def tick_phases(self, tick: int, begin_ns: int, durations, tid: int = 0) -> None:
        """Record one tick's phases from accumulated durations.

        *durations* is an iterable of ``(phase_name, duration_ns)`` in
        execution order.  Used by engines whose phases interleave per
        core (the rank-partitioned reference simulator): spans are
        synthesized contiguously from *begin_ns* so the trace shows the
        per-phase time split, and a ``tick`` span plus the
        ``repro_tick_seconds`` histogram cover the whole tick.
        """
        cursor = begin_ns
        for name, duration_ns in durations:
            self.phase(name, tick, cursor, cursor + duration_ns, tid=tid)
            cursor += duration_ns
        end = now_ns()
        self.trace.add("tick", begin_ns, end, tid=tid, attrs={"tick": tick})
        self._tick_hist.observe((end - begin_ns) * 1e-9)

    # -- flight recorder ---------------------------------------------------
    def flight_tick(
        self,
        tick: int,
        begin_ns: int,
        end_ns: int,
        spikes: int,
        messages_total: int,
        active_fraction: float = 1.0,
        occupancy: float | None = None,
        deliver_ns: int = 0,
        integrate_ns: int = 0,
        update_ns: int = 0,
        route_ns: int = 0,
    ) -> None:
        """Record one tick into the flight ring + live SLO gauges.

        The single per-engine hook: called once at the end of each
        engine tick with integer-nanosecond timestamps from ``now_ns``
        (keeping float arithmetic out of the integer kernels).  Sets
        ``repro_tick_budget_ratio`` (this tick's wall time over the
        1 ms budget) and ``repro_rtf`` (real-time factor over the
        retained flight window).  *occupancy* defaults to the current
        ``repro_batch_occupancy`` gauge, so serving lanes show up
        without the engine threading it through.
        """
        flight = self.flight
        if flight is None:
            return
        if occupancy is None:
            occupancy = self._occupancy_gauge.value_unlabeled()
        wall_ns = end_ns - begin_ns
        rtf = flight.record(
            tick, wall_ns, spikes, messages_total,
            active_fraction, occupancy,
            deliver_ns, integrate_ns, update_ns, route_ns,
        )
        self._budget_gauge.set_unlabeled(wall_ns / BUDGET_NS)
        self._rtf_gauge.set_unlabeled(rtf)

    # -- metrics -----------------------------------------------------------
    def publish_counters(self, counters) -> None:
        """Publish an engine's event counters into the registry."""
        publish_counters(self.metrics, counters)

    def set_gauge(self, name: str, value) -> None:
        """Set a gauge by catalogue name."""
        self.metrics.gauge(name).set(value)

    def event_snapshot(self) -> dict:
        """The deterministic event-metric subset of the snapshot.

        Identical across the reference, fast, and parallel engines for
        the same seeded network at matched message granularity — the
        cross-engine equivalence the obs test suite asserts bit-exactly.
        """
        snap = self.metrics.snapshot()
        return {name: snap.get(name, 0) for name in EVENT_METRICS}

    def phase_seconds(self) -> dict:
        """Accumulated wall-clock seconds per canonical tick phase.

        Always contains the four canonical phases plus the legacy
        ``synapse_neuron`` (= deliver + integrate + update) and
        ``network`` (= route) aggregates kept for compatibility with
        the original Compass profiling surface.
        """
        out = {name: float(self._phase_counter.value(phase=name)) for name in PHASES}
        out["synapse_neuron"] = out["deliver"] + out["integrate"] + out["update"]
        out["network"] = out["route"]
        return out

    # -- export ------------------------------------------------------------
    def export_chrome_trace(self, path: str) -> int:
        """Write the Chrome-trace JSON to *path*; return event count."""
        return self.trace.export_chrome(path)

    def write_metrics_json(self, path: str) -> None:
        """Write the metrics snapshot as JSON to *path*."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.metrics.to_json())
            f.write("\n")


def active_observer(obs: Observer | None) -> Observer | None:
    """*obs* if it is attached and active, else None.

    The one-line guard engines evaluate per tick: keeps the disabled
    path to a null check + attribute read.
    """
    return obs if (obs is not None and obs.active) else None
