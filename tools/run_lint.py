#!/usr/bin/env python
"""Run the determinism source lint over the repo (CI entry point).

Usage::

    python tools/run_lint.py [paths ...] [--json]

With no paths, lints ``src/repro`` and additionally runs the sanitizer's
static tick-protocol check over the parallel engine sources (SL2xx; see
``docs/sanitizer.md``).  Exits non-zero when any finding survives the
in-source pragma allowlist, so CI can gate on it.  See ``docs/lint.md``
for the SL rule catalogue.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.source import lint_paths  # noqa: E402
from repro.sanitize import check_protocol_sources  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    """Lint the given paths (default: src/repro); return the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--json", action="store_true", help="emit JSON diagnostics")
    args = parser.parse_args(argv)

    default_sweep = not args.paths
    report = lint_paths(args.paths or [str(REPO_ROOT / "src" / "repro")])
    if default_sweep:
        report.extend(check_protocol_sources())
    print(report.render_json() if args.json else report.render_text())
    return 1 if len(report) else 0


if __name__ == "__main__":
    sys.exit(main())
