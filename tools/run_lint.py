#!/usr/bin/env python
"""Run the determinism source lint over the repo (CI entry point).

Usage::

    python tools/run_lint.py [paths ...] [--json]

With no paths, lints ``src/repro``.  Exits non-zero when any finding
survives the in-source pragma allowlist, so CI can gate on it.  See
``docs/lint.md`` for the SL rule catalogue.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.source import lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    """Lint the given paths (default: src/repro); return the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=[str(REPO_ROOT / "src" / "repro")],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--json", action="store_true", help="emit JSON diagnostics")
    args = parser.parse_args(argv)

    report = lint_paths(args.paths)
    print(report.render_json() if args.json else report.render_text())
    return 1 if len(report) else 0


if __name__ == "__main__":
    sys.exit(main())
